package core

import (
	"context"
	"math"
	"sort"

	"uots/internal/obs"
	"uots/internal/pqueue"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// Search answers a top-k UOTS query with the expansion algorithm:
// incremental network expansion from every query location, exact textual
// scoring through the keyword inverted index, spatio-textual upper bounds
// on partly scanned and unseen trajectories, and early termination once no
// unexplored trajectory can beat the current k-th best. Results come back
// best-first.
//
// Ties at the k-th score are resolved toward smaller trajectory IDs among
// the trajectories the search scored exactly; equal-scoring trajectories
// pruned by the bound may be excluded.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) Search(q Query) ([]Result, SearchStats, error) {
	return e.SearchCtx(context.Background(), q)
}

// SearchCtx is Search with cancellation: the expansion loop polls ctx at
// bounded intervals (every cancelPollEvery steps) and, once the context is
// cancelled or its deadline expires, stops within one poll interval and
// returns nil results, the stats of the work done so far, and ctx.Err().
func (e *Engine) SearchCtx(ctx context.Context, q Query) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if q.Lambda == 0 {
		res, stats, err := e.textOnlyTopK(ctx, q, nil)
		stats.Elapsed = elapsed()
		if err != nil {
			return nil, stats, err
		}
		return res, stats, nil
	}
	st := newExpansionState(ctx, e, q, 0, true)
	if err := st.run(); err != nil {
		st.stats.Elapsed = elapsed()
		return nil, st.stats, err
	}
	results = st.topk.Results()
	st.stats.Elapsed = elapsed()
	return results, st.stats, nil
}

// SearchThreshold answers the threshold variant of the UOTS query: every
// trajectory with SimST ≥ theta, best-first. theta must be in (0, 1];
// thresholds near 1 prune hardest.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) SearchThreshold(q Query, theta float64) ([]Result, SearchStats, error) {
	return e.SearchThresholdCtx(context.Background(), q, theta)
}

// SearchThresholdCtx is SearchThreshold with cancellation (see SearchCtx).
func (e *Engine) SearchThresholdCtx(ctx context.Context, q Query, theta float64) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if !(theta > 0) || theta > 1 || math.IsNaN(theta) {
		return nil, SearchStats{}, ErrBadThreshold
	}
	if q.Lambda == 0 {
		res, stats, err := e.textOnlyThreshold(ctx, q, theta)
		stats.Elapsed = elapsed()
		if err != nil {
			return nil, stats, err
		}
		return res, stats, nil
	}
	st := newExpansionState(ctx, e, q, theta, false)
	if err := st.run(); err != nil {
		st.stats.Elapsed = elapsed()
		return nil, st.stats, err
	}
	sortResults(st.qualified)
	st.stats.Elapsed = elapsed()
	return st.qualified, st.stats, nil
}

// sortResults orders results best-first: descending score, ascending ID.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Traj < rs[j].Traj
	})
}

// cand is the per-trajectory search state of one expansion query.
type cand struct {
	mask     uint64    // query sources that have scanned this trajectory
	dists    []float64 // exact distance per source (+Inf while unknown)
	sumExp   float64   // Σ over scanned sources of e^{−dᵢ/γ}
	text     float64   // exact textual similarity (known up front)
	complete bool      // scored exactly or pruned; no further updates
}

// expansionState holds one in-flight expansion search.
type expansionState struct {
	e       *Engine
	q       Query
	theta   float64 // threshold variant bar (0 in top-k mode)
	useTopK bool

	sources  []expander
	live     []bool
	radExp   []float64 // e^{−rᵢ/γ}; 0 once source i is exhausted
	liveN    int
	allMask  uint64
	doneMask uint64

	cands      []*cand         // dense by TrajID; nil until first touch
	active     []trajdb.TrajID // incomplete candidates; compacted at rescans
	textScores map[trajdb.TrajID]float64
	textHeap   pqueue.Max[trajdb.TrajID]
	keep       func(trajdb.TrajID) bool // optional trajectory filter (nil accepts all)

	topk      *pqueue.TopK[Result]
	qualified []Result

	// Cross-partition bound exchange (nil outside sharded execution).
	// sharedBarred is set by bar() when the shared bound, not the local
	// threshold, was the binding constraint of the last call; localBar /
	// localBarOK capture the local threshold of that call so prunes can
	// be attributed to the exchange.
	shared       *SharedBound
	sharedBarred bool
	localBar     float64
	localBarOK   bool

	labels []float64 // heuristic scheduling labels (refreshed each rescan)
	rr     int
	steps  int

	goal  *roadnet.GoalSearch // lazy; text-probe random accesses only
	stats SearchStats

	trace    obs.Tracer // nil when the request is not traced
	lastPick int        // last source emitted as a scheduling decision

	cancel  canceller // bounded-interval cancellation polls
	initErr error     // cancellation observed during initText

	slabCands []cand    // arena for cand structs (one allocation per chunk)
	slabDists []float64 // arena for per-cand distance vectors
}

func newExpansionState(ctx context.Context, e *Engine, q Query, theta float64, useTopK bool) *expansionState {
	st := &expansionState{
		e:        e,
		q:        q,
		cancel:   newCanceller(ctx),
		trace:    tracerFrom(ctx),
		lastPick: -1,
		theta:    theta,
		useTopK:  useTopK,
		sources:  make([]expander, len(q.Locations)),
		live:     make([]bool, len(q.Locations)),
		radExp:   make([]float64, len(q.Locations)),
		liveN:    len(q.Locations),
		allMask:  maskAll(len(q.Locations)),
		cands:    make([]*cand, e.db.NumTrajectories()),
		labels:   make([]float64, len(q.Locations)),
	}
	// Inside a shared-expansion batch (SearchBatch with SharedExpansion)
	// the per-source settle streams come from the batch's shared
	// frontiers; a share built for a different store snapshot is ignored.
	share := batchShareFrom(ctx)
	if share != nil && !share.matches(e) {
		share = nil
	}
	for i, o := range q.Locations {
		if share != nil {
			st.sources[i] = share.cursorFor(o)
		} else {
			st.sources[i] = soloExpander{exp: roadnet.NewExpander(e.g, o), db: e.db}
		}
		st.live[i] = true
		st.radExp[i] = 1 // e^{−0/γ}
	}
	if useTopK {
		st.topk = pqueue.NewTopK[Result](q.K)
		st.shared = sharedBoundFrom(ctx)
	}
	st.initText()
	st.emit(TraceBegin, -1, -1, float64(len(q.Locations)), float64(e.db.NumTrajectories()), "")
	return st
}

func maskAll(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// initText scores every trajectory sharing at least one query keyword —
// the only trajectories with non-zero textual similarity — and loads them
// into the descending text heap that feeds the unseen-trajectory bound.
func (st *expansionState) initText() {
	st.textScores = make(map[trajdb.TrajID]float64)
	if len(st.q.Keywords) == 0 {
		return
	}
	ix := st.e.db.TextIndex()
	docs := ix.DocsWithAny(st.q.Keywords)
	st.stats.TextScored = len(docs)
	for i, d := range docs {
		// Text scoring touches the store's keyword path per document, so
		// this pre-pass honours cancellation too; run() aborts on initErr
		// before expanding.
		if i%cancelPollEvery == 0 {
			if err := st.cancel.check(); err != nil {
				st.initErr = err
				return
			}
		}
		id := trajdb.TrajID(d)
		s := st.e.textScore(st.q.Keywords, id)
		if s > 0 {
			st.textScores[id] = s
			st.textHeap.Push(s, id)
		}
	}
}

// bar returns the current pruning bar: exact scores strictly below it can
// never enter the result. ok is false while no bar exists yet (top-k not
// yet full). In sharded execution the bar is the better of the local
// top-k threshold and the cross-partition shared bound; candidates at
// exactly the bar always survive (strict-< prune), so the racy exchange
// never changes which results come back.
func (st *expansionState) bar() (float64, bool) {
	if !st.useTopK {
		return st.theta, true
	}
	local, ok := st.topk.Threshold()
	st.sharedBarred = false
	if st.shared != nil {
		if s, sok := st.shared.Load(); sok && (!ok || s > local) {
			st.sharedBarred = true
			st.localBar, st.localBarOK = local, ok
			return s, true
		}
	}
	return local, ok
}

func (st *expansionState) run() error {
	if st.initErr != nil {
		st.emit(TraceTerminate, -1, -1, 0, 0, TermCancelled)
		return st.initErr
	}
	relabel := st.e.opts.RelabelEvery
	for st.liveN > 0 {
		if st.steps%cancelPollEvery == 0 {
			if err := st.cancel.check(); err != nil {
				st.emit(TraceTerminate, -1, -1, 0, 0, TermCancelled)
				return err
			}
		}
		i := st.pickSource()
		if i != st.lastPick {
			st.emit(TraceSourcePick, i, -1, st.sources[i].radius(), 0, "")
			st.lastPick = i
		}
		v, d, ok := st.sources[i].next()
		if !ok {
			st.markDone(i)
			continue
		}
		st.stats.SettledVertices++
		st.radExp[i] = st.e.kernel(d)
		bit := uint64(1) << i
		for _, tid := range st.sources[i].scan(v) {
			c := st.candFor(tid)
			if c.complete || c.mask&bit != 0 {
				continue
			}
			c.mask |= bit
			c.dists[i] = d
			c.sumExp += st.radExp[i] // e^{−d/γ}: d is this source's current radius
			st.stats.ScanEvents++
			if c.mask|st.doneMask == st.allMask {
				st.complete(tid, c)
			}
		}
		st.steps++
		if st.steps%relabel == 0 && st.rescan() {
			st.stats.EarlyTerminated = true
			bar, _ := st.bar()
			st.emit(TraceTerminate, -1, -1, bar, 0, TermBound)
			return nil
		}
	}
	if err := st.finalizeExhausted(); err != nil {
		st.emit(TraceTerminate, -1, -1, 0, 0, TermCancelled)
		return err
	}
	st.emit(TraceTerminate, -1, -1, 0, 0, TermExhausted)
	return nil
}

// candFor returns the candidate state for tid, creating it on first touch.
func (st *expansionState) candFor(tid trajdb.TrajID) *cand {
	if c := st.cands[tid]; c != nil {
		return c
	}
	nLoc := len(st.q.Locations)
	if len(st.slabCands) == 0 {
		const chunk = 1024
		st.slabCands = make([]cand, chunk)
		st.slabDists = make([]float64, chunk*nLoc)
	}
	c := &st.slabCands[0]
	st.slabCands = st.slabCands[1:]
	dists := st.slabDists[:nLoc:nLoc]
	st.slabDists = st.slabDists[nLoc:]
	for i := range dists {
		dists[i] = math.Inf(1)
	}
	c.dists = dists
	c.text = st.textScores[tid]
	if st.keep != nil && !st.keep(tid) {
		c.complete = true // filtered out: scanned but never scored
	}
	st.cands[tid] = c
	st.active = append(st.active, tid)
	st.stats.VisitedTrajectories++
	st.emit(TraceAdmit, -1, int64(tid), c.text, 0, "")
	// Admission-time landmark prune: with the per-trajectory interval
	// index the spatial upper bound costs O(K) per location and no store
	// access, so it is cheap enough to test every admission against the
	// bar. A strict < prune against the monotonically non-decreasing bar
	// keeps results byte-identical to the unpruned engine: the pruned
	// trajectory's exact score can never reach the final k-th score, and
	// ties at the bar always survive.
	if !c.complete && st.e.opts.Index != nil {
		if bar, ok := st.bar(); ok {
			if ub := combine(st.q.Lambda, st.landmarkSpatialUB(tid), c.text); ub < bar {
				c.complete = true
				st.stats.LandmarkPrunes++
				st.emit(TracePrune, -1, int64(tid), ub, bar, NoteLandmark)
			}
		}
	}
	return c
}

// complete scores a fully known candidate exactly and feeds the result
// sink. Distances that remained +Inf (source exhausted without reaching
// the trajectory) contribute 0 to the spatial similarity.
func (st *expansionState) complete(tid trajdb.TrajID, c *cand) {
	c.complete = true
	st.stats.Candidates++
	spatial := st.e.spatialFromDists(c.dists)
	score := combine(st.q.Lambda, spatial, c.text)
	st.emit(TraceComplete, -1, int64(tid), score, spatial, "")
	res := Result{
		Traj:    tid,
		Score:   score,
		Spatial: spatial,
		Textual: c.text,
		Dists:   append([]float64(nil), c.dists...),
	}
	if st.useTopK {
		st.topk.Offer(score, int64(tid), res)
		if st.shared != nil {
			if thr, full := st.topk.Threshold(); full {
				st.shared.Raise(thr)
			}
		}
		return
	}
	if score >= st.theta {
		st.qualified = append(st.qualified, res)
	}
}

// markDone retires an exhausted query source: its radius bound becomes 0
// and candidates waiting only on it become complete.
func (st *expansionState) markDone(i int) {
	if !st.live[i] {
		return
	}
	st.live[i] = false
	st.liveN--
	st.radExp[i] = 0
	st.doneMask |= uint64(1) << i
	st.emit(TraceSourceDone, i, -1, st.sources[i].radius(), 0, "")
	keep := st.active[:0]
	for _, tid := range st.active {
		c := st.cands[tid]
		if c.complete {
			continue
		}
		if c.mask|st.doneMask == st.allMask {
			st.complete(tid, c)
			continue
		}
		keep = append(keep, tid)
	}
	st.active = keep
}

// sumRad returns Σ over live sources of e^{−rᵢ/γ}.
func (st *expansionState) sumRad() float64 {
	var s float64
	for i, ok := range st.live {
		if ok {
			s += st.radExp[i]
		}
	}
	return s
}

// peekUnseenText returns the largest textual score among trajectories the
// expansion has not touched yet, discarding heap entries that have since
// become candidates (lazy deletion).
//
//uots:allow looppoll -- lazy-deletion scan: each iteration pops a stale heap entry, so the loop is bounded by entries pushed in initText
func (st *expansionState) peekUnseenText() float64 {
	for {
		s, tid, ok := st.textHeap.Peek()
		if !ok {
			return 0
		}
		if st.cands[tid] == nil {
			return s
		}
		st.textHeap.Pop()
	}
}

// rescan is the periodic bound refresh: it prunes hopeless candidates,
// recomputes the global upper bound, runs adaptive text probes, refreshes
// the heuristic scheduling labels, and reports whether the search can
// terminate.
func (st *expansionState) rescan() bool {
	bar, haveBar := st.bar()
	lambda := st.q.Lambda
	nLoc := float64(len(st.q.Locations))
	sumRad := st.sumRad()

	// Adaptive text probe: when the unseen bound is blocked by a high
	// textual score rather than by expansion radii, resolve the blocking
	// trajectory's spatial distances directly instead of waiting for the
	// expansion to reach it.
	if haveBar && !st.e.opts.DisableTextProbe {
		//uots:allow looppoll -- bounded by the text heap: every iteration pops or completes a blocker; run() polls ctx between rescans
		for {
			textTop := st.peekUnseenText()
			if textTop == 0 {
				break
			}
			unseenSpatial := lambda * sumRad / nLoc
			if unseenSpatial >= bar || unseenSpatial+(1-lambda)*textTop < bar {
				break // spatial term blocks regardless, or nothing blocks
			}
			// Only resolve blockers that would still block once the
			// expansion radii reach the probe floor — cheaper blockers
			// clear themselves as the radii grow — and only once the
			// radii are actually there, so the pruning bar has matured.
			if lambda*st.probeFloor()+(1-lambda)*textTop < bar ||
				!st.radiiPastFloor() {
				break
			}
			_, tid, _ := st.textHeap.Pop()
			if st.hasLandmarkBounds() {
				if ubS := st.landmarkSpatialUB(tid); combine(lambda, ubS, textTop) < bar {
					// Provably outside the result: discard with no
					// Dijkstra work at all. candFor's admission prune may
					// have reached the same verdict already (it runs the
					// identical bound when Options.Index is set), so only
					// count and emit when this check did the work.
					if c := st.candFor(tid); !c.complete {
						c.complete = true
						st.stats.LandmarkPrunes++
						st.emit(TracePrune, -1, int64(tid), combine(lambda, ubS, textTop), bar, NoteLandmark)
					}
					continue
				}
			}
			st.probe(tid)
			bar, haveBar = st.bar()
			if !haveBar {
				break
			}
		}
	}

	// Sweep candidates: prune, probe floor-resistant partial blockers,
	// find the max partial bound, relabel.
	for i := range st.labels {
		st.labels[i] = 0
	}
	floor := st.probeFloor()
	maxPartial := math.Inf(-1)
	keep := st.active[:0]
	for _, tid := range st.active {
		c := st.cands[tid]
		if c.complete {
			continue
		}
		rest, restFloor := 0.0, 0.0
		pastFloor := true
		for i, ok := range st.live {
			if ok && c.mask&(uint64(1)<<i) == 0 {
				rest += st.radExp[i]
				restFloor += floor
				if st.radExp[i] > floor {
					pastFloor = false
				}
			}
		}
		ub := lambda*(c.sumExp+rest)/nLoc + (1-lambda)*c.text
		if haveBar && ub < bar {
			c.complete = true // pruned: provably outside the result
			note := ""
			if st.sharedBarred && (!st.localBarOK || ub >= st.localBar) {
				// The local threshold alone would not have pruned this
				// candidate: the cross-partition exchange did the work.
				st.stats.SharedBoundPrunes++
				note = NoteCrossShard
			}
			st.emit(TracePrune, -1, int64(tid), ub, bar, note)
			continue
		}
		// Endgame resolution: once every radius this candidate still
		// waits on has grown past the probe floor, a candidate that
		// still blocks termination will not clear itself at acceptable
		// cost — resolve its remaining distances directly.
		if haveBar && pastFloor && !st.e.opts.DisableTextProbe &&
			combine(lambda, (c.sumExp+restFloor)/nLoc, c.text) >= bar {
			st.probe(tid)
			bar, haveBar = st.bar()
			continue
		}
		keep = append(keep, tid)
		if ub > maxPartial {
			maxPartial = ub
		}
		for i, ok := range st.live {
			if ok && c.mask&(uint64(1)<<i) == 0 {
				st.labels[i] += ub
			}
		}
	}
	st.active = keep

	unseenUB := lambda*sumRad/nLoc + (1-lambda)*st.peekUnseenText()
	ub := math.Max(maxPartial, unseenUB)
	if st.trace != nil {
		barVal := -1.0
		if haveBar {
			barVal = bar
		}
		st.emit(TraceBound, -1, -1, ub, barVal, "")
	}
	if haveBar && ub < bar {
		return true
	}

	return false
}

// hasLandmarkBounds reports whether some form of landmark lower bound
// is configured (the per-trajectory interval index or raw ALT tables).
func (st *expansionState) hasLandmarkBounds() bool {
	return st.e.opts.Index != nil || st.e.opts.Landmarks != nil
}

// landmarkSpatialUB upper-bounds a trajectory's spatial similarity from
// landmark lower bounds on its distance to every query location. With
// Options.Index present the bound is an O(K) interval lookup per
// location and touches no store state; the Landmarks fallback scans the
// trajectory's vertex set (O(K·|τ|), faulting the record on a disk
// store) for a tighter but costlier bound.
func (st *expansionState) landmarkSpatialUB(tid trajdb.TrajID) float64 {
	var sum float64
	if ix := st.e.opts.Index; ix != nil {
		for _, o := range st.q.Locations {
			sum += st.e.kernel(ix.LowerBound(o, tid))
		}
	} else {
		lm := st.e.opts.Landmarks
		verts := st.e.db.UniqueVertices(tid)
		for _, o := range st.q.Locations {
			sum += st.e.kernel(lm.LowerBoundToSet(o, verts))
		}
	}
	return sum / float64(len(st.q.Locations))
}

// probe computes the exact spatial distances of one trajectory with
// early-terminating Dijkstras (random access in the spatial domain) and
// completes it. Used when a textually top-ranked trajectory blocks
// termination, and by the λ=0 fast path to fill result distances.
func (st *expansionState) probe(tid trajdb.TrajID) {
	c := st.candFor(tid)
	if c.complete {
		return
	}
	if st.goal == nil {
		st.goal = roadnet.NewGoalSearch(st.e.g)
	}
	st.stats.Probes++
	st.emit(TraceProbe, -1, int64(tid), 0, 0, "")
	// One multi-source corridor search: from the trajectory's vertices
	// toward every query location at once. Undirected distances make this
	// equivalent to |O| separate searches at a fraction of the cost.
	missing := make([]roadnet.VertexID, 0, len(st.q.Locations))
	missingIdx := make([]int, 0, len(st.q.Locations))
	for i, o := range st.q.Locations {
		if math.IsInf(c.dists[i], 1) {
			missing = append(missing, o)
			missingIdx = append(missingIdx, i)
		}
	}
	if len(missing) > 0 {
		dists := st.goal.FromSet(
			st.e.db.UniqueVertices(tid),
			missing,
			func() { st.stats.SettledVertices++ },
		)
		for j, i := range missingIdx {
			c.dists[i] = dists[j]
		}
	}
	st.complete(tid, c)
}

// probeFloor is the spatial-kernel value at the radius the probe policy is
// willing to let the expansion grow to before it starts resolving textual
// blockers directly.
func (st *expansionState) probeFloor() float64 {
	return math.Exp(-st.e.opts.ProbeRadiusFactor)
}

// radiiPastFloor reports whether every live expansion radius has grown
// beyond the probe floor radius — the endgame signal that remaining
// blockers will not clear themselves at acceptable cost.
func (st *expansionState) radiiPastFloor() bool {
	floor := st.probeFloor()
	for i, ok := range st.live {
		if ok && st.radExp[i] > floor {
			return false
		}
	}
	return true
}

// pickSource chooses the query source to expand next.
func (st *expansionState) pickSource() int {
	switch st.e.opts.Scheduling {
	case ScheduleRoundRobin:
		for {
			st.rr = (st.rr + 1) % len(st.sources)
			if st.live[st.rr] {
				return st.rr
			}
		}
	case ScheduleMinRadius:
		return st.minRadiusSource()
	default: // ScheduleHeuristic
		// Among the sources that still owe scans to live partly scanned
		// candidates (per the labels of the last rescan), expand the one
		// with the smallest radius: it completes outstanding candidates
		// at the least settled-area cost. With no outstanding labels the
		// unseen bound dominates and plain min-radius shrinks it fastest.
		best, bestR := -1, math.Inf(1)
		for i, ok := range st.live {
			if ok && st.labels[i] > 0 && st.sources[i].radius() < bestR {
				best, bestR = i, st.sources[i].radius()
			}
		}
		if best >= 0 {
			return best
		}
		return st.minRadiusSource()
	}
}

func (st *expansionState) minRadiusSource() int {
	best, bestR := -1, math.Inf(1)
	for i, ok := range st.live {
		if ok && st.sources[i].radius() < bestR {
			best, bestR = i, st.sources[i].radius()
		}
	}
	return best
}

// finalizeExhausted handles the no-early-termination case: every source
// exhausted its component. Spatially never-scanned trajectories (other
// components) still compete on their textual score alone — and when the
// top-k still has room, even zero-scoring trajectories fill the remaining
// slots (ascending ID, matching the exhaustive baseline's tie order).
func (st *expansionState) finalizeExhausted() error {
	for drained := 0; ; drained++ {
		if drained%cancelPollEvery == 0 {
			if err := st.cancel.check(); err != nil {
				return err
			}
		}
		_, tid, ok := st.textHeap.Pop()
		if !ok {
			break
		}
		if c := st.cands[tid]; c != nil && c.complete {
			continue
		}
		c := st.candFor(tid)
		if !c.complete {
			st.complete(tid, c) // all dists +Inf: spatial 0
		}
	}
	if !st.useTopK || st.topk.Full() {
		return nil
	}
	// Every remaining trajectory is unreachable from all sources and
	// shares no query keyword: its exact score is exactly 0.
	for id := 0; id < st.e.db.NumTrajectories() && !st.topk.Full(); id++ {
		if id%4096 == 0 {
			if err := st.cancel.check(); err != nil {
				return err
			}
		}
		tid := trajdb.TrajID(id)
		if c := st.cands[tid]; c != nil && c.complete {
			continue
		}
		c := st.candFor(tid)
		if !c.complete {
			st.complete(tid, c)
		}
	}
	return nil
}

// textOnlyTopK is the λ=0 fast path: the ranking is fully determined by
// the textual index; spatial distances are resolved only for the k
// returned trajectories so the Result decomposition stays complete.
// A non-nil keep restricts the ranking to accepted trajectories.
func (e *Engine) textOnlyTopK(ctx context.Context, q Query, keep func(trajdb.TrajID) bool) ([]Result, SearchStats, error) {
	var stats SearchStats
	cancel := newCanceller(ctx)
	trace := tracerFrom(ctx)
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceBegin, Source: -1, Traj: -1,
			Value: float64(len(q.Locations)), Extra: float64(e.db.NumTrajectories()), Note: TermTextOnly})
		defer trace.Emit(obs.SpanEvent{Kind: TraceTerminate, Source: -1, Traj: -1, Note: TermTextOnly})
	}
	topk := pqueue.NewTopK[trajdb.TrajID](q.K)
	scored := make(map[trajdb.TrajID]bool)
	if len(q.Keywords) > 0 {
		docs := e.db.TextIndex().DocsWithAny(q.Keywords)
		stats.TextScored = len(docs)
		for i, d := range docs {
			if i%cancelPollEvery == 0 {
				if err := cancel.check(); err != nil {
					return nil, stats, err
				}
			}
			id := trajdb.TrajID(d)
			scored[id] = true
			if keep != nil && !keep(id) {
				continue
			}
			topk.Offer(e.textScore(q.Keywords, id), int64(id), id)
		}
	}
	// Fill remaining slots with zero-score trajectories (smallest IDs win
	// the ties), so λ=0 agrees with the general algorithms on result size.
	for id := 0; id < e.db.NumTrajectories() && !topk.Full(); id++ {
		if id%4096 == 0 {
			if err := cancel.check(); err != nil {
				return nil, stats, err
			}
		}
		tid := trajdb.TrajID(id)
		if !scored[tid] && (keep == nil || keep(tid)) {
			topk.Offer(0, int64(id), tid)
		}
	}
	ids := topk.Results()
	stats.VisitedTrajectories = len(scored)
	stats.Candidates = len(ids)
	stats.EarlyTerminated = true

	sssp := roadnet.NewSSSP(e.g)
	results := make([]Result, len(ids))
	for i, id := range ids {
		// One early-terminating Dijkstra per returned result: poll every
		// iteration, the per-unit work dwarfs the poll.
		if err := cancel.check(); err != nil {
			return nil, stats, err
		}
		dists := e.exactDists(sssp, q.Locations, id)
		spatial := e.spatialFromDists(dists)
		text := e.textScore(q.Keywords, id)
		results[i] = Result{Traj: id, Score: text, Spatial: spatial, Textual: text, Dists: dists}
	}
	return results, stats, nil
}

// textOnlyThreshold is the λ=0 fast path for the threshold variant.
func (e *Engine) textOnlyThreshold(ctx context.Context, q Query, theta float64) ([]Result, SearchStats, error) {
	var stats SearchStats
	cancel := newCanceller(ctx)
	trace := tracerFrom(ctx)
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceBegin, Source: -1, Traj: -1,
			Value: float64(len(q.Locations)), Extra: float64(e.db.NumTrajectories()), Note: TermTextOnly})
		defer trace.Emit(obs.SpanEvent{Kind: TraceTerminate, Source: -1, Traj: -1, Note: TermTextOnly})
	}
	var results []Result
	sssp := roadnet.NewSSSP(e.g)
	if len(q.Keywords) > 0 {
		docs := e.db.TextIndex().DocsWithAny(q.Keywords)
		stats.TextScored = len(docs)
		for i, d := range docs {
			if i%cancelPollEvery == 0 {
				if err := cancel.check(); err != nil {
					return nil, stats, err
				}
			}
			id := trajdb.TrajID(d)
			text := e.textScore(q.Keywords, id)
			if text < theta {
				continue
			}
			dists := e.exactDists(sssp, q.Locations, id)
			results = append(results, Result{
				Traj:    id,
				Score:   text,
				Spatial: e.spatialFromDists(dists),
				Textual: text,
				Dists:   dists,
			})
		}
	}
	stats.VisitedTrajectories = stats.TextScored
	stats.Candidates = len(results)
	stats.EarlyTerminated = true
	sortResults(results)
	return results, stats, nil
}
