package core

import (
	"errors"
	"testing"

	"uots/internal/trajdb"
)

// TestTimeWindowContains pins the boundary semantics of the departure
// filter: both endpoints are inclusive, a window with To < From wraps
// midnight, and From == To admits exactly that single instant.
func TestTimeWindowContains(t *testing.T) {
	const day = trajdb.SecondsPerDay
	tests := []struct {
		name   string
		w      TimeWindow
		t      float64
		want   bool
		reason string
	}{
		{"inside", TimeWindow{From: 3600, To: 7200}, 5000, true, "interior instant"},
		{"from-endpoint", TimeWindow{From: 3600, To: 7200}, 3600, true, "From is inclusive"},
		{"to-endpoint", TimeWindow{From: 3600, To: 7200}, 7200, true, "To is inclusive"},
		{"before", TimeWindow{From: 3600, To: 7200}, 3599.999, false, "just before From"},
		{"after", TimeWindow{From: 3600, To: 7200}, 7200.001, false, "just after To"},
		{"full-day", TimeWindow{From: 0, To: day - 1}, 43200, true, "whole-day window"},
		{"day-start", TimeWindow{From: 0, To: day - 1}, 0, true, "midnight belongs to a window starting at 0"},

		{"wrap-late", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 23 * 3600, true, "late evening inside a 22:00–02:00 wrap"},
		{"wrap-early", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 3600, true, "early morning inside the wrap"},
		{"wrap-midnight", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 0, true, "midnight itself inside the wrap"},
		{"wrap-outside", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 12 * 3600, false, "noon outside the wrap"},
		{"wrap-from-endpoint", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 22 * 3600, true, "wrap From is inclusive"},
		{"wrap-to-endpoint", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 2 * 3600, true, "wrap To is inclusive"},
		{"wrap-just-before", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 22*3600 - 1, false, "just before the wrap opens"},
		{"wrap-just-after", TimeWindow{From: 22 * 3600, To: 2 * 3600}, 2*3600 + 1, false, "just after the wrap closes"},

		{"instant-hit", TimeWindow{From: 5 * 3600, To: 5 * 3600}, 5 * 3600, true, "From == To admits that instant"},
		{"instant-miss-after", TimeWindow{From: 5 * 3600, To: 5 * 3600}, 5*3600 + 1, false, "From == To rejects the next second"},
		{"instant-miss-before", TimeWindow{From: 5 * 3600, To: 5 * 3600}, 5*3600 - 1, false, "From == To rejects the prior second"},
		{"zero-instant", TimeWindow{From: 0, To: 0}, 0, true, "the zero window admits midnight only"},
		{"zero-instant-miss", TimeWindow{From: 0, To: 0}, 1, false, "the zero window rejects everything else"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.w.Contains(tc.t); got != tc.want {
				t.Errorf("TimeWindow{%g, %g}.Contains(%g) = %v, want %v (%s)",
					tc.w.From, tc.w.To, tc.t, got, tc.want, tc.reason)
			}
		})
	}
}

// TestTimeWindowValidate pins the domain check: bounds live in
// [0, 86400) — a full day is expressed as [0, 86399], not [0, 86400].
func TestTimeWindowValidate(t *testing.T) {
	const day = trajdb.SecondsPerDay
	valid := []TimeWindow{
		{From: 0, To: 0},
		{From: 0, To: day - 1},
		{From: 22 * 3600, To: 2 * 3600},
	}
	for _, w := range valid {
		if err := w.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", w, err)
		}
	}
	invalid := []TimeWindow{
		{From: -1, To: 3600},
		{From: 0, To: day},
		{From: day, To: day},
		{From: 3600, To: -0.5},
	}
	for _, w := range invalid {
		if err := w.Validate(); !errors.Is(err, ErrBadWindow) {
			t.Errorf("Validate(%+v) = %v, want ErrBadWindow", w, err)
		}
	}
}
