package core

import (
	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// TrajStore is the storage interface the engine runs on. The in-memory
// trajdb.Store implements it, as does the disk-resident diskstore.Store
// (index structures in memory, trajectory payloads behind an LRU buffer) —
// the same algorithms run unchanged over either, which is how the
// evaluation's disk-resident experiment is produced.
//
// Implementations must be safe for concurrent use: the batch engine calls
// every method from multiple goroutines.
//
// The interface returns no errors — its methods sit inside tight search
// loops. An implementation that hits an unrecoverable mid-query failure
// (truncated record file, failed device) must panic with a
// *trajdb.StoreError; every public engine entry point recovers that panic
// and returns it to the caller as an error wrapping ErrStoreFault. See
// FaultStore for a test wrapper that injects such failures.
type TrajStore interface {
	// Graph returns the road network the trajectories live on.
	Graph() *roadnet.Graph
	// NumTrajectories returns the number of trajectories; IDs are dense
	// 0..n-1.
	NumTrajectories() int
	// Traj returns a trajectory's full record. The result must be treated
	// as immutable and is only guaranteed valid until the next store call
	// (disk-backed stores may recycle buffers).
	Traj(id trajdb.TrajID) *trajdb.Trajectory
	// TrajsAtVertex returns the ascending IDs of trajectories with a
	// sample at v — the expansion scan access path. Index-resident in all
	// implementations.
	TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID
	// ContainsVertex reports whether trajectory id samples vertex v.
	ContainsVertex(id trajdb.TrajID, v roadnet.VertexID) bool
	// UniqueVertices returns the ascending unique sample vertices of id.
	UniqueVertices(id trajdb.TrajID) []roadnet.VertexID
	// Keywords returns the textual attributes of id.
	Keywords(id trajdb.TrajID) textual.TermSet
	// TextIndex returns the keyword inverted index (DocID == TrajID).
	TextIndex() *textual.Index
	// BBox returns the planar bounding box of id's samples.
	BBox(id trajdb.TrajID) geo.Rect
}

// Interface conformance of the in-memory store.
var _ TrajStore = (*trajdb.Store)(nil)
