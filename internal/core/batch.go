package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"uots/internal/obs"
)

// Algorithm names a query-processing strategy for batch runs and
// experiment harnesses.
type Algorithm int

const (
	// AlgoExpansion is the paper's expansion search.
	AlgoExpansion Algorithm = iota
	// AlgoExhaustive is the full-Dijkstra brute-force baseline.
	AlgoExhaustive
	// AlgoTextFirst is the textual-order baseline.
	AlgoTextFirst
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoExpansion:
		return "expansion"
	case AlgoExhaustive:
		return "exhaustive"
	case AlgoTextFirst:
		return "textfirst"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// BatchOptions configures a parallel batch run.
type BatchOptions struct {
	// Workers is the number of concurrent query goroutines
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Algorithm selects the per-query strategy (default AlgoExpansion).
	Algorithm Algorithm
	// TextFirst tunes AlgoTextFirst runs.
	TextFirst TextFirstOptions
	// SharedExpansion enables the batch planner: queries referencing the
	// same source vertex share one expansion frontier and its memoized
	// vertex→trajectory scans (see batchplan.go), doing each network
	// relaxation once per distinct source instead of once per reference.
	// Per-query admission, pruning bounds, and scheduling stay
	// independent, so results and per-query stats are byte-identical to
	// independent runs; only the batch-level planner counters and
	// wall-clock change. Effective for AlgoExpansion only — the
	// baselines do not expand frontiers incrementally.
	SharedExpansion bool
}

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	Index   int // position of the query in the input slice
	Results []Result
	Stats   SearchStats
	Err     error
}

// BatchStats aggregates a whole batch run.
type BatchStats struct {
	Queries   int
	Failed    int
	PerQuery  SearchStats   // summed per-query counters
	WallClock time.Duration // end-to-end elapsed time of the batch

	// Shared-expansion planner counters (all zero when SharedExpansion
	// is off or the algorithm is not AlgoExpansion).
	DistinctSources int    // distinct source vertices with a shared frontier
	SourceRefs      int    // per-query source references planned onto frontiers
	FrontierSettles uint64 // Dijkstra settles the shared frontiers performed
	ServedSettles   uint64 // settles served to queries; minus FrontierSettles = expansions saved
}

// SearchBatch processes the queries with a fixed pool of worker
// goroutines. Results arrive indexed by input position. A tracer
// attached to ctx (obs.ContextWithTracer) is shared by every worker:
// per-query span events interleave into one stream, which the
// obs.TraceRecorder accepts concurrently.
//
// With opts.SharedExpansion, AlgoExpansion queries referencing the same
// source vertex share expansion frontiers (see batchplan.go); per-query
// results and stats are byte-identical to independent runs either way.
//
// The context cancels the whole batch: queries the scheduler never
// handed to a worker are marked with ctx.Err(), and queries already
// running observe the cancellation inside their search loops and abort
// within one poll interval. A query that completed before the
// cancellation keeps its results — scheduling is tracked explicitly per
// slot, so a legitimately-empty successful result is never reclassified
// as cancelled. SearchBatch itself always drains its workers before
// returning, so no goroutines outlive the call; its error is ctx.Err().
func (e *Engine) SearchBatch(ctx context.Context, queries []Query, opts BatchOptions) (out []BatchResult, stats BatchStats, err error) {
	// Store panics inside worker goroutines are converted to per-query
	// errors by the entry points the workers call; this guard covers the
	// batch frame itself.
	defer recoverStoreFault(nil, &err)
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch opts.Algorithm {
	case AlgoExpansion, AlgoExhaustive, AlgoTextFirst:
	default:
		return nil, BatchStats{}, fmt.Errorf("core: unknown batch algorithm %d", int(opts.Algorithm))
	}
	elapsed := stopwatch()
	var share *batchShare
	if opts.SharedExpansion && opts.Algorithm == AlgoExpansion {
		share = newBatchShare(e)
		ctx = contextWithBatchShare(ctx, share)
	}
	out = make([]BatchResult, len(queries))
	// scheduled marks the slots handed to a worker; workers write every
	// slot they receive (run or drained), so unscheduled slots — and
	// only those — are filled in afterwards. Written and read by this
	// goroutine only.
	scheduled := make([]bool, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				// A cancelled batch drains scheduled jobs without running
				// them, so the pool exits promptly.
				if err := ctx.Err(); err != nil {
					out[idx] = BatchResult{Index: idx, Err: err}
					continue
				}
				res, stats, err := e.runOne(ctx, queries[idx], opts)
				out[idx] = BatchResult{Index: idx, Results: res, Stats: stats, Err: err}
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case jobs <- i:
			scheduled[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	stats = finalizeBatch(out, scheduled, ctx.Err())
	stats.WallClock = elapsed()
	if share != nil {
		stats.DistinctSources = int(share.distinctSources.Load())
		stats.SourceRefs = int(share.sourceRefs.Load())
		stats.FrontierSettles = share.frontierSettles.Load()
		stats.ServedSettles = share.servedSettles.Load()
		if trace := tracerFrom(ctx); trace != nil {
			trace.Emit(obs.SpanEvent{Kind: TraceBatchPlan, Source: -1, Traj: -1,
				Value: float64(stats.ServedSettles), Extra: float64(stats.FrontierSettles),
				Note: fmt.Sprintf("sources=%d refs=%d", stats.DistinctSources, stats.SourceRefs)})
		}
	}
	return out, stats, ctx.Err()
}

// finalizeBatch classifies the batch slots after the workers drain:
// slots never handed to a worker are marked with the batch's
// cancellation error; every scheduled slot is trusted as written —
// a successful result is a successful result even when it is empty and
// the batch context has since been cancelled. (The previous
// implementation inferred unscheduled slots from the zero-value shape
// `Results == nil && Err == nil && Stats == zero`, which reclassified
// any legitimately-empty completed query as cancelled.)
func finalizeBatch(out []BatchResult, scheduled []bool, ctxErr error) BatchStats {
	stats := BatchStats{Queries: len(out)}
	for i := range out {
		if !scheduled[i] {
			out[i] = BatchResult{Index: i, Err: ctxErr}
		}
		if out[i].Err != nil {
			stats.Failed++
			continue
		}
		stats.PerQuery.Add(out[i].Stats)
	}
	return stats
}

func (e *Engine) runOne(ctx context.Context, q Query, opts BatchOptions) ([]Result, SearchStats, error) {
	switch opts.Algorithm {
	case AlgoExhaustive:
		return e.ExhaustiveSearchCtx(ctx, q)
	case AlgoTextFirst:
		return e.TextFirstSearchCtx(ctx, q, opts.TextFirst)
	default:
		return e.SearchCtx(ctx, q)
	}
}
