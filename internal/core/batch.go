package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Algorithm names a query-processing strategy for batch runs and
// experiment harnesses.
type Algorithm int

const (
	// AlgoExpansion is the paper's expansion search.
	AlgoExpansion Algorithm = iota
	// AlgoExhaustive is the full-Dijkstra brute-force baseline.
	AlgoExhaustive
	// AlgoTextFirst is the textual-order baseline.
	AlgoTextFirst
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoExpansion:
		return "expansion"
	case AlgoExhaustive:
		return "exhaustive"
	case AlgoTextFirst:
		return "textfirst"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// BatchOptions configures a parallel batch run.
type BatchOptions struct {
	// Workers is the number of concurrent query goroutines
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Algorithm selects the per-query strategy (default AlgoExpansion).
	Algorithm Algorithm
	// TextFirst tunes AlgoTextFirst runs.
	TextFirst TextFirstOptions
}

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	Index   int // position of the query in the input slice
	Results []Result
	Stats   SearchStats
	Err     error
}

// BatchStats aggregates a whole batch run.
type BatchStats struct {
	Queries   int
	Failed    int
	PerQuery  SearchStats   // summed per-query counters
	WallClock time.Duration // end-to-end elapsed time of the batch
}

// SearchBatch processes the queries with a fixed pool of worker
// goroutines — the per-query searches are fully independent, which is the
// parallelism this research line exploits. Results arrive indexed by input
// position. A tracer attached to ctx (obs.ContextWithTracer) is shared by
// every worker: per-query span events interleave into one stream, which
// the obs.TraceRecorder accepts concurrently. The context cancels the whole batch: unscheduled queries are
// marked with ctx.Err(), and queries already running observe the
// cancellation inside their search loops and abort within one poll
// interval. SearchBatch itself always drains its workers before
// returning, so no goroutines outlive the call.
func (e *Engine) SearchBatch(ctx context.Context, queries []Query, opts BatchOptions) (out []BatchResult, stats BatchStats, err error) {
	// Store panics inside worker goroutines are converted to per-query
	// errors by the entry points the workers call; this guard covers the
	// batch frame itself.
	defer recoverStoreFault(nil, &err)
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch opts.Algorithm {
	case AlgoExpansion, AlgoExhaustive, AlgoTextFirst:
	default:
		return nil, BatchStats{}, fmt.Errorf("core: unknown batch algorithm %d", int(opts.Algorithm))
	}
	elapsed := stopwatch()
	out = make([]BatchResult, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				// A cancelled batch drains scheduled jobs without running
				// them, so the pool exits promptly.
				if err := ctx.Err(); err != nil {
					out[idx] = BatchResult{Index: idx, Err: err}
					continue
				}
				res, stats, err := e.runOne(ctx, queries[idx], opts)
				out[idx] = BatchResult{Index: idx, Results: res, Stats: stats, Err: err}
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark unscheduled queries as cancelled.
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	stats = BatchStats{Queries: len(queries), WallClock: elapsed()}
	for i := range out {
		if out[i].Results == nil && out[i].Err == nil && out[i].Stats == (SearchStats{}) {
			if err := ctx.Err(); err != nil {
				out[i].Err = err
				out[i].Index = i
			}
		}
		if out[i].Err != nil {
			stats.Failed++
			continue
		}
		stats.PerQuery.Add(out[i].Stats)
	}
	return out, stats, ctx.Err()
}

func (e *Engine) runOne(ctx context.Context, q Query, opts BatchOptions) ([]Result, SearchStats, error) {
	switch opts.Algorithm {
	case AlgoExhaustive:
		return e.ExhaustiveSearchCtx(ctx, q)
	case AlgoTextFirst:
		return e.TextFirstSearchCtx(ctx, q, opts.TextFirst)
	default:
		return e.SearchCtx(ctx, q)
	}
}
