package core

import (
	"errors"
	"sync/atomic"
	"time"

	"uots/internal/textual"
	"uots/internal/trajdb"
)

// ErrInjected is the default cause carried by FaultStore failures.
var ErrInjected = errors.New("core: injected store fault")

// FaultConfig tunes a FaultStore. The zero value injects nothing.
type FaultConfig struct {
	// FailEveryTraj makes every N-th Traj call panic with a
	// *trajdb.StoreError (0 disables). The count is global across
	// goroutines, so failures are deterministic for a serial caller.
	FailEveryTraj int
	// FailEveryKeywords does the same for Keywords calls.
	FailEveryKeywords int
	// Latency is added to every Traj and Keywords call before it
	// completes or fails — a stand-in for a slow or degraded device.
	Latency time.Duration
	// Err is the injected underlying cause (default ErrInjected).
	Err error
}

// FaultStore wraps a TrajStore with deterministic fault and latency
// injection on the record-payload access paths (Traj, Keywords) — the
// paths that fault in pages on a disk-resident store. It exists to prove,
// in tests, that the engine surfaces mid-query storage failures as errors
// with sane stats rather than panicking, and to make queries slow enough
// to exercise deadlines and load shedding without timing flakiness.
// Safe for concurrent use whenever the wrapped store is.
type FaultStore struct {
	TrajStore
	cfg   FaultConfig
	trajN atomic.Int64
	kwN   atomic.Int64
}

// NewFaultStore wraps db with the given injection policy.
func NewFaultStore(db TrajStore, cfg FaultConfig) *FaultStore {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	return &FaultStore{TrajStore: db, cfg: cfg}
}

// Calls reports how many Traj and Keywords calls the store has served
// (including the failed ones).
func (f *FaultStore) Calls() (traj, keywords int64) {
	return f.trajN.Load(), f.kwN.Load()
}

// Traj implements TrajStore, failing every cfg.FailEveryTraj-th call.
func (f *FaultStore) Traj(id trajdb.TrajID) *trajdb.Trajectory {
	n := f.trajN.Add(1)
	f.dwell()
	if k := int64(f.cfg.FailEveryTraj); k > 0 && n%k == 0 {
		panic(&trajdb.StoreError{Op: "Traj", ID: id, Err: f.cfg.Err})
	}
	return f.TrajStore.Traj(id)
}

// Keywords implements TrajStore, failing every cfg.FailEveryKeywords-th
// call.
func (f *FaultStore) Keywords(id trajdb.TrajID) textual.TermSet {
	n := f.kwN.Add(1)
	f.dwell()
	if k := int64(f.cfg.FailEveryKeywords); k > 0 && n%k == 0 {
		panic(&trajdb.StoreError{Op: "Keywords", ID: id, Err: f.cfg.Err})
	}
	return f.TrajStore.Keywords(id)
}

func (f *FaultStore) dwell() {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
}
