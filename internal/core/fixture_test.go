package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// fixture bundles a small but non-trivial world shared by the core tests:
// a sparse city, a keyword universe, and a trajectory corpus.
type fixture struct {
	g     *roadnet.Graph
	vocab *textual.SyntheticVocab
	db    *trajdb.Store
}

var (
	fixtureOnce sync.Once
	fixtureVal  fixture
)

// testFixture returns the shared fixture, building it on first use.
func testFixture(t testing.TB) fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		g := roadnet.BRNLike(0.12, 7) // ≈ 20x20 grid
		vocab := textual.GenerateVocab(6, 40, 1.0, 11)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count:       400,
			MeanSamples: 20,
			Vocab:       vocab,
			Seed:        13,
		})
		if err != nil {
			panic("fixture: " + err.Error())
		}
		fixtureVal = fixture{g: g, vocab: vocab, db: db}
	})
	return fixtureVal
}

// randomQuery draws a query with n locations and m keywords, keyword topic
// correlated with the first location's region (mirroring the workload
// generator).
func (f fixture) randomQuery(rng *rand.Rand, nLoc, nKw int, lambda float64, k int) Query {
	locs := make([]roadnet.VertexID, nLoc)
	for i := range locs {
		locs[i] = roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	}
	regions := trajdb.NewRegionTopics(f.g.Bounds(), f.vocab.NumTopics())
	topic := regions.TopicOf(f.g.Point(locs[0]))
	kws := f.vocab.DrawQueryTerms(topic, nKw, 0.8, rng)
	return Query{Locations: locs, Keywords: kws, Lambda: lambda, K: k}
}

// newTestEngine builds an engine over the fixture with options.
func newTestEngine(t *testing.T, opts Options) (*Engine, fixture) {
	t.Helper()
	f := testFixture(t)
	e, err := NewEngine(f.db, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, f
}

const scoreTol = 1e-9

// sameScores checks that two best-first result lists agree on scores
// (IDs may differ only where scores tie).
func sameScores(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if diff := got[i].Score - want[i].Score; diff > scoreTol || diff < -scoreTol {
			t.Errorf("%s: rank %d score %.12f, want %.12f (got traj %d, want %d)",
				label, i, got[i].Score, want[i].Score, got[i].Traj, want[i].Traj)
		}
		if got[i].Score == want[i].Score && got[i].Traj != want[i].Traj {
			// Equal scores with different IDs is a legal tie; verify the
			// tie is real by checking adjacent want entries share the score.
			continue
		}
	}
}
