package core

import (
	"context"
	"math"
	"sync/atomic"
)

// SharedBound is a monotone, concurrency-safe lower bound on the k-th
// best score of a top-k search that has been partitioned across several
// engines (internal/shard's scatter-gather executor). Every partition
// publishes its local k-th threshold through Raise as soon as its local
// top-k fills; because each partition's candidate set is a subset of the
// union, its local k-th score can only under-estimate the global one, so
// the maximum over partitions is always a valid global pruning bar.
//
// The engine consumes the bound inside bar(): a candidate whose upper
// bound falls strictly below it can never enter the merged global top-k,
// so a lagging shard prunes against the leaders' progress instead of
// waiting for its own top-k to fill. Raise is a CAS max, so the value
// only grows; the exchange being racy affects only *when* a prune
// happens, never *whether* a result survives — ties at the bar survive
// the strict-< prune, keeping sharded results byte-identical to the
// monolithic engine.
//
// All participants must run the same query with the same K. Mixing K
// values (e.g. the order-aware search's doubling K′ rounds) would let a
// small-K threshold over-prune a large-K participant, so the shard
// executor only attaches a SharedBound to same-K scatters.
//
// The zero value is ready to use and carries no bound.
type SharedBound struct {
	bits atomic.Uint64 // Float64bits of the bound; 0 = no bound published
}

// Raise lifts the bound to v if v improves it. Non-positive and NaN
// values carry no information and are ignored (scores live in [0, 1]).
func (b *SharedBound) Raise(v float64) {
	if !(v > 0) {
		return
	}
	newBits := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if old != 0 && math.Float64frombits(old) >= v {
			return
		}
		if b.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Load returns the current bound; ok is false while nothing has been
// published yet.
func (b *SharedBound) Load() (v float64, ok bool) {
	bits := b.bits.Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

type sharedBoundKey struct{}

// ContextWithSharedBound attaches a cross-partition pruning bound to the
// context. Engines reached through this context publish their local
// top-k thresholds to b and prune against the best published value.
func ContextWithSharedBound(ctx context.Context, b *SharedBound) context.Context {
	return context.WithValue(ctx, sharedBoundKey{}, b)
}

// sharedBoundFrom extracts the shared bound, tolerating nil contexts the
// same way newCanceller does.
func sharedBoundFrom(ctx context.Context) *SharedBound {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(sharedBoundKey{}).(*SharedBound)
	return b
}
