package core

import (
	"context"

	"uots/internal/obs"
)

// Search tracing. A tracer attached to the request context
// (obs.ContextWithTracer) receives one obs.SpanEvent per notable step
// of a search: source scheduling decisions, candidate admissions and
// prunes, bound refreshes, probes, and the termination cause. The
// serving layer attaches a bounded recorder per X-Trace request and
// replays it from /debug/trace/{id}.
//
// The disabled path is free: every emit site is guarded by a nil check
// on the state's tracer field, so an un-traced search performs one
// context lookup at entry and zero allocations afterwards (verified by
// TestDisabledTracerAddsZeroAllocs and BenchmarkSearchCtxTracer).
//
// Events carry the expansion-step ordinal, never wall-clock time, so a
// replayed query yields a bit-identical trace (nodrift contract).

// Trace event kinds emitted by the engine.
const (
	// TraceBegin opens a search: Value = |O|, Extra = |T|.
	TraceBegin = "begin"
	// TraceSourcePick records a scheduling switch to a new query
	// source: Source = the picked source, Value = its current radius.
	// Consecutive picks of the same source are coalesced.
	TraceSourcePick = "source_pick"
	// TraceSourceDone retires an exhausted source: Source = the source.
	TraceSourceDone = "source_done"
	// TraceAdmit admits a trajectory as a candidate: Traj = the
	// trajectory, Value = its textual score.
	TraceAdmit = "admit"
	// TraceComplete scores a candidate exactly: Traj, Value = combined
	// score, Extra = spatial part.
	TraceComplete = "complete"
	// TracePrune discards a candidate whose upper bound fell below the
	// bar: Traj, Value = its bound, Extra = the bar.
	TracePrune = "prune"
	// TraceProbe resolves a blocking trajectory's distances directly:
	// Traj = the probed trajectory.
	TraceProbe = "probe"
	// TraceBound is the periodic bound refresh: Value = the global
	// upper bound, Extra = the pruning bar (-1 while no bar exists).
	TraceBound = "bound"
	// TraceRerank is one order-aware rerank round: Step = the round,
	// Value = K', Extra = the certification bound.
	TraceRerank = "rerank"
	// TraceSelect is one diversified (MMR) pick: Step = the pick
	// ordinal, Traj = the picked trajectory, Value = its MMR score.
	TraceSelect = "mmr_pick"
	// TraceTerminate closes a search; Note carries the cause.
	TraceTerminate = "terminate"
	// TraceBatchPlan closes a shared-expansion batch (SearchBatch with
	// BatchOptions.SharedExpansion): Value = settles served to queries,
	// Extra = Dijkstra settles the shared frontiers actually performed
	// (the difference is the expansion work the planner shared); Note
	// carries the distinct-source and source-reference counts.
	TraceBatchPlan = "batch_plan"
)

// NoteCrossShard marks a TracePrune whose binding bar came from the
// cross-partition SharedBound rather than the local top-k threshold —
// the shard executor's bound exchange doing work the local search could
// not (counted in SearchStats.SharedBoundPrunes).
const NoteCrossShard = "xshard"

// NoteLandmark marks a TracePrune decided purely from landmark
// lower bounds (Options.Landmarks or Options.Index): the candidate was
// discarded before any exact distance computation or record access
// (counted in SearchStats.LandmarkPrunes).
const NoteLandmark = "landmark"

// Termination causes carried in TraceTerminate's Note.
const (
	// TermBound: the upper bound dropped below the bar (early stop).
	TermBound = "bound"
	// TermExhausted: every source drained its component.
	TermExhausted = "exhausted"
	// TermCancelled: the context was cancelled mid-search.
	TermCancelled = "cancelled"
	// TermTextOnly: the λ=0 fast path answered from the text index.
	TermTextOnly = "text_only"
)

// tracerFrom extracts the request tracer, tolerating nil contexts the
// same way newCanceller does.
func tracerFrom(ctx context.Context) obs.Tracer {
	if ctx == nil {
		return nil
	}
	return obs.TracerFromContext(ctx)
}

// emit sends one event when tracing is enabled. The nil guard lives
// here so call sites stay one line; the SpanEvent literal is built only
// after the guard, keeping the disabled path allocation-free.
func (st *expansionState) emit(kind string, source int, traj int64, value, extra float64, note string) {
	if st.trace == nil {
		return
	}
	st.trace.Emit(obs.SpanEvent{
		Step:   st.steps,
		Kind:   kind,
		Source: source,
		Traj:   traj,
		Value:  value,
		Extra:  extra,
		Note:   note,
	})
}
