package core

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

func TestNewEngineValidation(t *testing.T) {
	f := testFixture(t)
	if _, err := NewEngine(nil, Options{}); !errors.Is(err, ErrNilStore) {
		t.Errorf("nil store: %v", err)
	}
	empty := trajdb.NewBuilder(f.g, nil).Freeze()
	if _, err := NewEngine(empty, Options{}); !errors.Is(err, ErrEmptyStore) {
		t.Errorf("empty store: %v", err)
	}
	bad := []Options{
		{DistScale: -1},
		{DistScale: math.NaN()},
		{RelabelEvery: -3},
		{Scheduling: Scheduling(99)},
		{TextSim: TextSim(99)},
		{ProbeRadiusFactor: -1},
	}
	for i, opts := range bad {
		if _, err := NewEngine(f.db, opts); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	e, err := NewEngine(f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Options()
	if got.DistScale != 1 || got.RelabelEvery != 64 || got.ProbeRadiusFactor != 2.5 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if e.Store() != f.db {
		t.Error("Store accessor wrong")
	}
}

func TestQueryValidation(t *testing.T) {
	e, f := testEngineDefault(t)
	base := Query{Locations: []roadnet.VertexID{0}, Lambda: 0.5, K: 1}
	cases := []struct {
		name   string
		mutate func(Query) Query
		want   error
	}{
		{"no locations", func(q Query) Query { q.Locations = nil; return q }, ErrNoLocations},
		{"too many", func(q Query) Query {
			q.Locations = make([]roadnet.VertexID, 65)
			return q
		}, ErrTooManyLocations},
		{"bad vertex", func(q Query) Query { q.Locations = []roadnet.VertexID{-1}; return q }, ErrLocationRange},
		{"vertex past end", func(q Query) Query {
			q.Locations = []roadnet.VertexID{roadnet.VertexID(f.g.NumVertices())}
			return q
		}, ErrLocationRange},
		{"lambda low", func(q Query) Query { q.Lambda = -0.1; return q }, ErrBadLambda},
		{"lambda high", func(q Query) Query { q.Lambda = 1.1; return q }, ErrBadLambda},
		{"lambda NaN", func(q Query) Query { q.Lambda = math.NaN(); return q }, ErrBadLambda},
		{"negative k", func(q Query) Query { q.K = -2; return q }, ErrBadK},
	}
	for _, c := range cases {
		if _, _, err := e.Search(c.mutate(base)); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	// K=0 defaults to 1.
	res, _, err := e.Search(base)
	if err != nil || len(res) != 1 {
		t.Fatalf("K default: %d results, %v", len(res), err)
	}
	// Threshold validation.
	for _, theta := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, _, err := e.SearchThreshold(base, theta); !errors.Is(err, ErrBadThreshold) {
			t.Errorf("theta=%g accepted", theta)
		}
		if _, _, err := e.ExhaustiveThreshold(base, theta); !errors.Is(err, ErrBadThreshold) {
			t.Errorf("exhaustive theta=%g accepted", theta)
		}
	}
	// Evaluate validation.
	if _, err := e.Evaluate(base, -1); !errors.Is(err, ErrTrajRange) {
		t.Errorf("Evaluate(-1): %v", err)
	}
	if _, err := e.Evaluate(base, trajdb.TrajID(f.db.NumTrajectories())); !errors.Is(err, ErrTrajRange) {
		t.Errorf("Evaluate(past end): %v", err)
	}
}

func TestResultsSortedAndScoresDecomposed(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 10; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), 1+rng.IntN(4), 0.1+0.8*rng.Float64(), 8)
		res, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if i > 0 && res[i-1].Score < r.Score-scoreTol {
				t.Fatalf("results not sorted: %g before %g", res[i-1].Score, r.Score)
			}
			if r.Score < 0 || r.Score > 1+scoreTol {
				t.Fatalf("score %g out of range", r.Score)
			}
			want := q.Lambda*r.Spatial + (1-q.Lambda)*r.Textual
			if math.Abs(r.Score-want) > scoreTol {
				t.Fatalf("score %g != decomposition %g", r.Score, want)
			}
			if len(r.Dists) != len(q.Locations) {
				t.Fatalf("Dists has %d entries for %d locations", len(r.Dists), len(q.Locations))
			}
			// Spatial must equal the kernel fold of the reported distances.
			var sum float64
			for _, d := range r.Dists {
				if !math.IsInf(d, 1) {
					sum += math.Exp(-d / e.Options().DistScale)
				}
			}
			if math.Abs(r.Spatial-sum/float64(len(q.Locations))) > scoreTol {
				t.Fatalf("spatial %g inconsistent with dists", r.Spatial)
			}
		}
	}
}

func TestStatsAreSane(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(21, 22))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	_, stats, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisitedTrajectories <= 0 || stats.VisitedTrajectories > f.db.NumTrajectories() {
		t.Errorf("visited = %d", stats.VisitedTrajectories)
	}
	if stats.Candidates <= 0 || stats.Candidates > stats.VisitedTrajectories {
		t.Errorf("candidates = %d of %d visited", stats.Candidates, stats.VisitedTrajectories)
	}
	if stats.ScanEvents < stats.VisitedTrajectories-stats.Probes {
		t.Errorf("scan events %d below visited %d", stats.ScanEvents, stats.VisitedTrajectories)
	}
	if stats.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	_, exStats, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	if exStats.VisitedTrajectories != f.db.NumTrajectories() {
		t.Errorf("exhaustive visited %d, want all %d", exStats.VisitedTrajectories, f.db.NumTrajectories())
	}
}

func TestLambdaExtremes(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(31, 32))
	// λ=1: pure spatial; textual scores must not affect ranking.
	q := f.randomQuery(rng, 3, 3, 1.0, 5)
	res, _, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if math.Abs(r.Score-r.Spatial) > scoreTol {
			t.Errorf("λ=1 score %g != spatial %g", r.Score, r.Spatial)
		}
	}
	// λ=0: pure textual fast path, still returns full decomposition.
	q.Lambda = 0
	res, stats, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.EarlyTerminated {
		t.Error("λ=0 should use the index fast path")
	}
	for _, r := range res {
		if math.Abs(r.Score-r.Textual) > scoreTol {
			t.Errorf("λ=0 score %g != textual %g", r.Score, r.Textual)
		}
		if len(r.Dists) != len(q.Locations) {
			t.Error("λ=0 results should still carry distances")
		}
	}
}

func TestNoKeywordsQuery(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(41, 42))
	q := f.randomQuery(rng, 3, 0, 0.7, 5)
	q.Keywords = nil
	want, _, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "no-keywords", got, want)
	for _, r := range got {
		if r.Textual != 0 {
			t.Errorf("textual score %g without query keywords", r.Textual)
		}
	}
}

func TestKLargerThanStore(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(51, 52))
	q := f.randomQuery(rng, 2, 2, 0.5, f.db.NumTrajectories()+50)
	got, _, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != f.db.NumTrajectories() {
		t.Fatalf("got %d results, want the whole store %d", len(got), f.db.NumTrajectories())
	}
	want, _, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "k>|T|", got, want)
}

func TestCosineTextSim(t *testing.T) {
	f := testFixture(t)
	e, err := NewEngine(f.db, Options{TextSim: TextCosineIDF})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(61, 62))
	for trial := 0; trial < 6; trial++ {
		q := f.randomQuery(rng, 2, 3, 0.4, 5)
		want, _, err := e.ExhaustiveSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, "cosine", got, want)
	}
}

func TestLandmarkAssistedSearchExact(t *testing.T) {
	f := testFixture(t)
	lm := roadnet.NewLandmarks(f.g, 8, 0)
	e, err := NewEngine(f.db, Options{Landmarks: lm})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 10; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), 1+rng.IntN(4), 0.1+0.8*rng.Float64(), 5)
		want, _, err := plain.ExhaustiveSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, "landmarks", got, want)
	}
}

func TestSearchBatch(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(81, 82))
	queries := make([]Query, 12)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 2, 0.5, 3)
	}
	// An invalid query in the middle must fail alone.
	queries[5].Lambda = 7

	for _, workers := range []int{1, 3, 8} {
		out, stats, err := e.SearchBatch(context.Background(), queries, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Queries != len(queries) || stats.Failed != 1 {
			t.Fatalf("workers=%d: stats %+v", workers, stats)
		}
		for i, r := range out {
			if i == 5 {
				if r.Err == nil {
					t.Fatal("invalid query did not fail")
				}
				continue
			}
			if r.Err != nil {
				t.Fatalf("query %d failed: %v", i, r.Err)
			}
			if r.Index != i {
				t.Fatalf("result %d has index %d", i, r.Index)
			}
			// Batch results must match sequential results exactly.
			seq, _, err := e.Search(queries[i])
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(r.Results) {
				t.Fatalf("query %d: batch %d results, sequential %d", i, len(r.Results), len(seq))
			}
			for j := range seq {
				if seq[j].Traj != r.Results[j].Traj || seq[j].Score != r.Results[j].Score {
					t.Fatalf("query %d rank %d differs between batch and sequential", i, j)
				}
			}
		}
	}
}

func TestSearchBatchCancellation(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(91, 92))
	queries := make([]Query, 50)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 2, 0.5, 3)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before scheduling
	out, stats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if stats.Failed == 0 {
		t.Error("cancelled batch should report failures")
	}
	cancelled := 0
	for _, r := range out {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no per-query cancellation errors recorded")
	}
}

func TestSearchBatchBadAlgorithm(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(93, 94))
	queries := []Query{f.randomQuery(rng, 2, 2, 0.5, 3)}
	if _, _, err := e.SearchBatch(context.Background(), queries, BatchOptions{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestBatchAlgorithmsAgree(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(95, 96))
	queries := make([]Query, 4)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 2, 0.5, 3)
	}
	expOut, _, err := e.SearchBatch(context.Background(), queries, BatchOptions{Algorithm: AlgoExpansion})
	if err != nil {
		t.Fatal(err)
	}
	exhOut, _, err := e.SearchBatch(context.Background(), queries, BatchOptions{Algorithm: AlgoExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	tfOut, _, err := e.SearchBatch(context.Background(), queries, BatchOptions{Algorithm: AlgoTextFirst})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		sameScores(t, "batch exp vs exh", expOut[i].Results, exhOut[i].Results)
		sameScores(t, "batch tf vs exh", tfOut[i].Results, exhOut[i].Results)
	}
}

func TestStringers(t *testing.T) {
	if ScheduleHeuristic.String() != "heuristic" ||
		ScheduleRoundRobin.String() != "roundrobin" ||
		ScheduleMinRadius.String() != "minradius" {
		t.Error("Scheduling strings wrong")
	}
	if Scheduling(9).String() == "" {
		t.Error("unknown Scheduling should still print")
	}
	if TextJaccard.String() != "jaccard" || TextCosineIDF.String() != "cosine-idf" {
		t.Error("TextSim strings wrong")
	}
	if AlgoExpansion.String() != "expansion" || AlgoExhaustive.String() != "exhaustive" ||
		AlgoTextFirst.String() != "textfirst" {
		t.Error("Algorithm strings wrong")
	}
	if Algorithm(9).String() == "" || TextSim(9).String() == "" {
		t.Error("unknown enums should still print")
	}
}

func TestTextScoredMatchesIndex(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(97, 98))
	q := f.randomQuery(rng, 2, 3, 0.5, 5)
	_, stats, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want := len(f.db.TextIndex().DocsWithAny(textual.TermSet(q.Keywords)))
	if stats.TextScored != want {
		t.Errorf("TextScored = %d, index says %d", stats.TextScored, want)
	}
}
