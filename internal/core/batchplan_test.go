package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// Tests of the shared-expansion batch planner (batchplan.go): the
// cross-validation suite pinning byte-identical results and stats
// against independent runs, the cancellation and store-fault paths
// through the shared frontiers, and the finalizeBatch regression tests
// for the sentinel-misclassification fix.

// hotspotQueries draws n queries whose locations all come from a small
// pool of source vertices, guaranteeing the cross-query source overlap
// the planner exploits (the serving shape: many users, few hotspots).
// Duplicate locations within one query are allowed and intended.
func hotspotQueries(f fixture, rng *rand.Rand, n, poolSize int, lambda float64, k int) []Query {
	pool := make([]roadnet.VertexID, poolSize)
	for i := range pool {
		pool[i] = roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	}
	queries := make([]Query, n)
	for i := range queries {
		q := f.randomQuery(rng, 2+rng.IntN(2), 3, lambda, k)
		for j := range q.Locations {
			q.Locations[j] = pool[rng.IntN(len(pool))]
		}
		queries[i] = q
	}
	return queries
}

// statsExceptElapsed strips the wall-clock field so per-query stats can
// be compared exactly (SearchStats is comparable).
func statsExceptElapsed(st SearchStats) SearchStats {
	st.Elapsed = 0
	return st
}

// TestBatchSharedExpansionCrossValidation is the planner's correctness
// contract: with SharedExpansion on, every query's Results and
// SearchStats (except Elapsed) are byte-identical to both an
// independent batch run and a per-query SearchCtx run — sharing the
// frontiers must be observationally invisible per query.
func TestBatchSharedExpansionCrossValidation(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(91, 0))
	for _, lambda := range []float64{0, 0.3, 0.7, 1} {
		queries := hotspotQueries(f, rng, 16, 4, lambda, 5)
		shared, sstats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 4, SharedExpansion: true})
		if err != nil {
			t.Fatalf("λ=%v shared batch: %v", lambda, err)
		}
		indep, istats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 4})
		if err != nil {
			t.Fatalf("λ=%v independent batch: %v", lambda, err)
		}
		for i := range queries {
			if shared[i].Err != nil || indep[i].Err != nil {
				t.Fatalf("λ=%v entry %d: errs %v / %v", lambda, i, shared[i].Err, indep[i].Err)
			}
			if !reflect.DeepEqual(shared[i].Results, indep[i].Results) {
				t.Errorf("λ=%v entry %d: shared results diverge from independent batch", lambda, i)
			}
			if got, want := statsExceptElapsed(shared[i].Stats), statsExceptElapsed(indep[i].Stats); got != want {
				t.Errorf("λ=%v entry %d: stats diverge: shared %+v, independent %+v", lambda, i, got, want)
			}
			solo, soloStats, err := e.SearchCtx(ctx, queries[i])
			if err != nil {
				t.Fatalf("λ=%v entry %d SearchCtx: %v", lambda, i, err)
			}
			if !reflect.DeepEqual(shared[i].Results, solo) {
				t.Errorf("λ=%v entry %d: shared results diverge from per-query SearchCtx", lambda, i)
			}
			if got, want := statsExceptElapsed(shared[i].Stats), statsExceptElapsed(soloStats); got != want {
				t.Errorf("λ=%v entry %d: stats diverge from SearchCtx: %+v vs %+v", lambda, i, got, want)
			}
		}
		// The planner counters must record genuine sharing: more source
		// references than distinct frontiers, and more settles served to
		// queries than Dijkstra settles performed (the saved expansions).
		// λ=0 routes to the text-only fast path — no expansion happens at
		// all, so the counters are legitimately zero there.
		if lambda == 0 {
			if sstats.DistinctSources != 0 || sstats.ServedSettles != 0 {
				t.Errorf("λ=0: text-only batch reported planner counters: %+v", sstats)
			}
			continue
		}
		if sstats.DistinctSources <= 0 || sstats.SourceRefs <= sstats.DistinctSources {
			t.Errorf("λ=%v: no source overlap recorded: sources=%d refs=%d",
				lambda, sstats.DistinctSources, sstats.SourceRefs)
		}
		if sstats.ServedSettles <= sstats.FrontierSettles {
			t.Errorf("λ=%v: no expansion saving: served=%d frontier=%d",
				lambda, sstats.ServedSettles, sstats.FrontierSettles)
		}
		if istats.DistinctSources != 0 || istats.SourceRefs != 0 ||
			istats.FrontierSettles != 0 || istats.ServedSettles != 0 {
			t.Errorf("λ=%v: independent batch reported planner counters: %+v", lambda, istats)
		}
	}
}

// TestBatchSharedExpansionOtherAlgorithms verifies SharedExpansion is a
// no-op for the baselines: the flag must neither perturb their results
// nor report planner counters (they do not expand frontiers).
func TestBatchSharedExpansionOtherAlgorithms(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(92, 0))
	queries := hotspotQueries(f, rng, 8, 3, 0.5, 5)
	for _, algo := range []Algorithm{AlgoExhaustive, AlgoTextFirst} {
		shared, sstats, err := e.SearchBatch(ctx, queries, BatchOptions{Algorithm: algo, SharedExpansion: true})
		if err != nil {
			t.Fatalf("%v shared batch: %v", algo, err)
		}
		indep, _, err := e.SearchBatch(ctx, queries, BatchOptions{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v independent batch: %v", algo, err)
		}
		for i := range queries {
			if !reflect.DeepEqual(shared[i].Results, indep[i].Results) {
				t.Errorf("%v entry %d: SharedExpansion changed baseline results", algo, i)
			}
		}
		if sstats.DistinctSources != 0 || sstats.FrontierSettles != 0 || sstats.ServedSettles != 0 {
			t.Errorf("%v: baseline batch reported planner counters: %+v", algo, sstats)
		}
	}
}

// TestBatchSharedStaleShareFallsBack verifies the snapshot keying: a
// share built for one engine is refused by an engine over a different
// store (matches fails), falling back to private expanders with
// unchanged results rather than serving foreign scan lists.
func TestBatchSharedStaleShareFallsBack(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	other, err := NewEngine(NewFaultStore(f.db, FaultConfig{}), Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(93, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	share := newBatchShare(e)
	if share.matches(other) {
		t.Fatal("share built for one store matches an engine over another store")
	}
	ctx := contextWithBatchShare(context.Background(), share)
	got, _, err := other.SearchCtx(ctx, q)
	if err != nil {
		t.Fatalf("SearchCtx with foreign share: %v", err)
	}
	want, _, err := other.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("foreign share perturbed results instead of being ignored")
	}
	if n := share.sourceRefs.Load(); n != 0 {
		t.Errorf("foreign share was consulted: %d source refs recorded", n)
	}
}

// scanFaultStore panics with a *trajdb.StoreError on the n-th
// TrajsAtVertex call — the access path FaultStore does not cover, and
// the one the shared frontiers scan under their mutex.
type scanFaultStore struct {
	TrajStore
	n     atomic.Int64
	failN int64
}

func (s *scanFaultStore) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID {
	if n := s.n.Add(1); s.failN > 0 && n == s.failN {
		panic(&trajdb.StoreError{Op: "TrajsAtVertex", Err: ErrInjected})
	}
	return s.TrajStore.TrajsAtVertex(v)
}

// TestBatchSharedFrontierStoreFault injects a one-shot store fault into
// the scan path under the shared-frontier mutex. The query that
// triggered the extension must fail with ErrStoreFault; the frontier
// must stay usable (mutex released, settle retried) so every other
// query completes with correct results — no deadlock, no hole in the
// shared settle stream.
func TestBatchSharedFrontierStoreFault(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(94, 0))
	queries := hotspotQueries(f, rng, 12, 3, 0.5, 5)

	clean, err := NewEngine(f.db, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want, _, err := clean.SearchBatch(context.Background(), queries, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatalf("clean batch: %v", err)
	}

	fs := &scanFaultStore{TrajStore: f.db, failN: 40}
	e, err := NewEngine(fs, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out, stats, err := e.SearchBatch(context.Background(), queries, BatchOptions{Workers: 4, SharedExpansion: true})
	if err != nil {
		t.Fatalf("faulted batch: %v", err)
	}
	failed := 0
	for i, o := range out {
		if o.Err != nil {
			if !errors.Is(o.Err, ErrStoreFault) {
				t.Errorf("entry %d: err %v does not wrap ErrStoreFault", i, o.Err)
			}
			failed++
			continue
		}
		if !reflect.DeepEqual(o.Results, want[i].Results) {
			t.Errorf("entry %d: results diverge after a sibling's store fault", i)
		}
	}
	if failed == 0 {
		t.Fatal("no entry faulted; failN=40 should trip during the batch")
	}
	if failed == len(out) {
		t.Fatal("every entry faulted; the one-shot fault should hit one query")
	}
	if stats.Failed != failed {
		t.Errorf("stats.Failed = %d, want %d", stats.Failed, failed)
	}
}

// cancelOnScanStore cancels a context on the n-th TrajsAtVertex call,
// so a shared-expansion batch is cancelled while frontiers are mid-
// extension.
type cancelOnScanStore struct {
	TrajStore
	n      atomic.Int64
	after  int64
	once   sync.Once
	cancel context.CancelFunc
}

func (s *cancelOnScanStore) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID {
	if s.n.Add(1) >= s.after {
		s.once.Do(s.cancel)
	}
	return s.TrajStore.TrajsAtVertex(v)
}

// TestBatchSharedCancellation cancels a shared-expansion batch from
// inside the frontier scan path and verifies the batch returns promptly
// with ctx.Err(), every slot carries either a finished result or an
// error, and slots that completed before the cancel keep their results.
func TestBatchSharedCancellation(t *testing.T) {
	f := testFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelOnScanStore{TrajStore: f.db, after: 60, cancel: cancel}
	e, err := NewEngine(cs, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(95, 0))
	queries := hotspotQueries(f, rng, 32, 3, 0.5, 5)

	out, stats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 2, SharedExpansion: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	cancelled, completed := 0, 0
	for i, o := range out {
		switch {
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		case o.Err != nil:
			t.Errorf("entry %d: unexpected error %v", i, o.Err)
		default:
			completed++
			if o.Results == nil {
				t.Errorf("entry %d: successful slot lost its results", i)
			}
		}
	}
	if cancelled == 0 {
		t.Error("no entry recorded context.Canceled; the cancel fired too late to test anything")
	}
	if stats.Failed != cancelled {
		t.Errorf("stats.Failed = %d, want %d cancelled entries", stats.Failed, cancelled)
	}
}

// TestBatchSharedTraceEvent verifies a shared batch emits the
// batch_plan span event carrying the planner counters.
func TestBatchSharedTraceEvent(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(96, 0))
	queries := hotspotQueries(f, rng, 8, 3, 0.5, 5)
	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	_, stats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 2, SharedExpansion: true})
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == TraceBatchPlan {
			if got, want := uint64(ev.Value), stats.ServedSettles; got != want {
				t.Errorf("batch_plan Value = %d, want ServedSettles %d", got, want)
			}
			if got, want := uint64(ev.Extra), stats.FrontierSettles; got != want {
				t.Errorf("batch_plan Extra = %d, want FrontierSettles %d", got, want)
			}
			return
		}
	}
	t.Error("no batch_plan event in the trace of a shared batch")
}

// TestFinalizeBatchTrustsScheduledSlots is the regression test for the
// batch sentinel misclassification: a slot that WAS handed to a worker
// and completed with the zero-value success shape (no results, no
// error, zero stats) must stay a success even when the batch context
// has since been cancelled. The previous implementation inferred
// unscheduled slots from that zero shape and re-marked such a slot with
// the cancellation error.
func TestFinalizeBatchTrustsScheduledSlots(t *testing.T) {
	out := []BatchResult{{Index: 0}}
	stats := finalizeBatch(out, []bool{true}, context.Canceled)
	if out[0].Err != nil {
		t.Fatalf("scheduled empty-success slot reclassified as failed: %v", out[0].Err)
	}
	if stats.Failed != 0 {
		t.Fatalf("stats.Failed = %d, want 0", stats.Failed)
	}
	if stats.Queries != 1 {
		t.Fatalf("stats.Queries = %d, want 1", stats.Queries)
	}
}

// TestFinalizeBatchMarksUnscheduledSlots verifies the complementary
// half of the fix: slots the feeder never handed to a worker are marked
// with the batch's cancellation error, with their index filled in, and
// counted as failed — while scheduled slots keep their written outcome.
func TestFinalizeBatchMarksUnscheduledSlots(t *testing.T) {
	out := make([]BatchResult, 3)
	out[0] = BatchResult{Index: 0, Results: []Result{{Traj: 7, Score: 0.5}},
		Stats: SearchStats{VisitedTrajectories: 3}}
	stats := finalizeBatch(out, []bool{true, false, false}, context.Canceled)
	if out[0].Err != nil || len(out[0].Results) != 1 {
		t.Errorf("scheduled slot was rewritten: %+v", out[0])
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Errorf("unscheduled slot %d: err = %v, want context.Canceled", i, out[i].Err)
		}
		if out[i].Index != i {
			t.Errorf("unscheduled slot %d: index = %d", i, out[i].Index)
		}
	}
	if stats.Failed != 2 {
		t.Errorf("stats.Failed = %d, want 2", stats.Failed)
	}
	if stats.PerQuery.VisitedTrajectories != 3 {
		t.Errorf("PerQuery folded wrong slots: %+v", stats.PerQuery)
	}
}

// TestBatchUnscheduledSlotsEndToEnd drives the unscheduled path through
// the public API: a pre-cancelled context means no query is ever
// scheduled, and every slot must carry the cancellation error.
func TestBatchUnscheduledSlotsEndToEnd(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(97, 0))
	queries := hotspotQueries(f, rng, 6, 3, 0.5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, stats, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 2, SharedExpansion: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	for i, o := range out {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("entry %d: err = %v, want context.Canceled", i, o.Err)
		}
	}
	if stats.Failed != len(queries) {
		t.Errorf("stats.Failed = %d, want %d", stats.Failed, len(queries))
	}
}
