package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"uots/internal/trajdb"
)

// faultEngine builds an engine over the shared fixture wrapped in a
// FaultStore with the given config.
func faultEngine(t *testing.T, cfg FaultConfig) (*Engine, *FaultStore, fixture) {
	t.Helper()
	f := testFixture(t)
	fs := NewFaultStore(f.db, cfg)
	e, err := NewEngine(fs, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, fs, f
}

// TestStoreFaultSurfacesAsError verifies every engine entry point turns a
// mid-query store panic into an error wrapping ErrStoreFault, with the
// *trajdb.StoreError cause preserved and no results returned.
func TestStoreFaultSurfacesAsError(t *testing.T) {
	// Keywords faults hit the text pre-scoring of every algorithm; Traj
	// faults hit the access paths (start times, order-aware reranks) that
	// skip Keywords.
	for _, mode := range []struct {
		name string
		cfg  FaultConfig
	}{
		{"keywords", FaultConfig{FailEveryKeywords: 3}},
		{"traj", FaultConfig{FailEveryTraj: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e, _, f := faultEngine(t, mode.cfg)
			rng := rand.New(rand.NewPCG(81, 0))
			q := f.randomQuery(rng, 2, 4, 0.5, 5)
			for _, v := range ctxVariants() {
				res, _, err := v.run(e, context.Background(), q)
				if err == nil {
					// Not every algorithm touches both access paths (e.g. the
					// plain expansion search never loads full records); only
					// algorithms that hit the faulted path must error.
					continue
				}
				if !errors.Is(err, ErrStoreFault) {
					t.Errorf("%s: err %v does not wrap ErrStoreFault", v.name, err)
				}
				var se *trajdb.StoreError
				if !errors.As(err, &se) {
					t.Errorf("%s: err %v does not carry a *trajdb.StoreError", v.name, err)
				} else if !errors.Is(err, ErrInjected) {
					t.Errorf("%s: underlying cause lost: %v", v.name, err)
				}
				if res != nil {
					t.Errorf("%s: returned %d results alongside a store fault", v.name, len(res))
				}
			}
		})
	}
}

// TestStoreFaultCoversEveryEntryPoint pins down which entry points fault
// under an all-paths failure policy: with both access paths failing on
// their first call, every algorithm must error (none can produce a
// ranking without touching the store).
func TestStoreFaultCoversEveryEntryPoint(t *testing.T) {
	e, _, f := faultEngine(t, FaultConfig{FailEveryTraj: 1, FailEveryKeywords: 1})
	rng := rand.New(rand.NewPCG(82, 0))
	q := f.randomQuery(rng, 2, 4, 0.5, 5)
	for _, v := range ctxVariants() {
		if _, _, err := v.run(e, context.Background(), q); !errors.Is(err, ErrStoreFault) {
			t.Errorf("%s: err = %v, want ErrStoreFault", v.name, err)
		}
	}
	if _, err := e.Evaluate(q, 0); !errors.Is(err, ErrStoreFault) {
		t.Errorf("Evaluate: err = %v, want ErrStoreFault", err)
	}
	if _, err := e.OrderAwareEvaluate(q, 0); !errors.Is(err, ErrStoreFault) {
		t.Errorf("OrderAwareEvaluate: err = %v, want ErrStoreFault", err)
	}
}

// TestFaultStoreDeterminism verifies the N-th-call counters make failures
// reproducible: the same query faults after the same number of calls.
func TestFaultStoreDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 0))
	f := testFixture(t)
	q := f.randomQuery(rng, 2, 4, 0.5, 5)
	var counts []int64
	for i := 0; i < 3; i++ {
		e, fs, _ := faultEngine(t, FaultConfig{FailEveryKeywords: 7})
		if _, _, err := e.ExhaustiveSearchCtx(context.Background(), q); !errors.Is(err, ErrStoreFault) {
			t.Fatalf("run %d: err = %v, want ErrStoreFault", i, err)
		}
		_, kw := fs.Calls()
		counts = append(counts, kw)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("fault point drifted across identical runs: %v", counts)
	}
	if counts[0]%7 != 0 {
		t.Errorf("faulted after %d Keywords calls, want a multiple of 7", counts[0])
	}
}

// TestFaultStoreLatency verifies injected latency actually slows the
// access paths — the mechanism the server tests rely on for deterministic
// deadline expiry.
func TestFaultStoreLatency(t *testing.T) {
	f := testFixture(t)
	fs := NewFaultStore(f.db, FaultConfig{Latency: time.Millisecond})
	start := time.Now()
	for i := 0; i < 20; i++ {
		fs.Keywords(trajdb.TrajID(i % f.db.NumTrajectories()))
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("20 calls with 1ms injected latency took %s, want ≥ 20ms", elapsed)
	}
}

// TestBatchSurvivesStoreFaults verifies a batch with per-query store
// faults reports them per entry without failing the whole batch.
func TestBatchSurvivesStoreFaults(t *testing.T) {
	// Each exhaustive query scores all ~400 fixture trajectories, so a
	// period of 1500 faults a few queries out of twelve, not all of them.
	e, _, f := faultEngine(t, FaultConfig{FailEveryKeywords: 1500})
	rng := rand.New(rand.NewPCG(84, 0))
	queries := make([]Query, 12)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 3, 0.5, 5)
	}
	out, stats, err := e.SearchBatch(context.Background(), queries, BatchOptions{Workers: 3, Algorithm: AlgoExhaustive})
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	var failed int
	for _, o := range out {
		if o.Err != nil {
			if !errors.Is(o.Err, ErrStoreFault) {
				t.Errorf("entry %d: err %v does not wrap ErrStoreFault", o.Index, o.Err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no batch entry faulted; FailEveryKeywords=100 should trip during 12 exhaustive queries")
	}
	if failed == len(out) {
		t.Fatal("every entry faulted; expected some queries to complete")
	}
	if stats.Failed != failed {
		t.Errorf("stats.Failed = %d, want %d", stats.Failed, failed)
	}
}

// TestUnrelatedPanicPropagates verifies recoverStoreFault re-panics
// anything that is not a *trajdb.StoreError — engine bugs must stay loud.
func TestUnrelatedPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-store panic was swallowed by recoverStoreFault")
		}
	}()
	var results []Result
	var err error
	func() {
		defer recoverStoreFault(&results, &err)
		panic("engine bug")
	}()
}
