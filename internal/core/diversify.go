package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"uots/internal/obs"
	"uots/internal/trajdb"
)

// Diversified search (an extension beyond the paper): trip recommendation
// suffers when the top-k are k near-copies of the same route, which is
// common in commuter corpora. DiversifiedSearch retrieves an enlarged
// unordered candidate pool with the expansion search and then greedily
// selects k trajectories by maximal marginal relevance:
//
//	MMR(τ) = (1−μ)·SimST(q, τ) − μ·max_{σ already picked} overlap(τ, σ)
//
// where overlap is the Jaccard similarity of the two trajectories' vertex
// sets (route overlap). μ=0 degenerates to the plain top-k; μ→1 picks
// maximally disjoint routes.

// ErrBadDiversity is returned for μ outside [0, 1).
var ErrBadDiversity = errors.New("core: diversity weight must be in [0, 1)")

// DiversifyOptions tunes DiversifiedSearch.
type DiversifyOptions struct {
	// Mu is the diversity weight μ ∈ [0, 1) (default 0.3).
	Mu float64
	// PoolFactor sizes the candidate pool as PoolFactor·k (default 4,
	// minimum pool 16).
	PoolFactor int
}

// Normalize validates opts and fills defaults, returning the effective
// options. Exported for executors layered above the engine (the sharded
// scatter-gather in internal/shard sizes its merged pool with it).
func (o DiversifyOptions) Normalize() (DiversifyOptions, error) {
	if o.Mu == 0 {
		o.Mu = 0.3
	}
	if o.Mu < 0 || o.Mu >= 1 || math.IsNaN(o.Mu) {
		return o, fmt.Errorf("%w: got %g", ErrBadDiversity, o.Mu)
	}
	if o.PoolFactor <= 0 {
		o.PoolFactor = 4
	}
	return o, nil
}

// PoolK returns the unordered candidate pool size the MMR selection
// draws k results from. o must be normalized.
func (o DiversifyOptions) PoolK(k int) int {
	p := k * o.PoolFactor
	if p < 16 {
		p = 16
	}
	return p
}

// DiversifiedSearch answers a top-k query re-ranked for route diversity.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) DiversifiedSearch(q Query, opts DiversifyOptions) ([]Result, SearchStats, error) {
	return e.DiversifiedSearchCtx(context.Background(), q, opts)
}

// DiversifiedSearchCtx is DiversifiedSearch with cancellation: the pool
// retrieval polls ctx (see SearchCtx), and the MMR selection polls between
// greedy picks.
func (e *Engine) DiversifiedSearchCtx(ctx context.Context, q Query, opts DiversifyOptions) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	opts, err = opts.Normalize()
	if err != nil {
		return nil, SearchStats{}, err
	}
	poolQ := q
	poolQ.K = opts.PoolK(q.K)
	pool, stats, err := e.SearchCtx(ctx, poolQ)
	if err != nil {
		return nil, stats, err
	}
	picked, err := e.SelectDiverseCtx(ctx, pool, q.K, opts)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	stats.Elapsed = elapsed()
	return picked, stats, nil
}

// SelectDiverseCtx greedily picks k results from a best-first candidate
// pool by maximal marginal relevance, polling ctx between picks. It is
// the selection half of DiversifiedSearchCtx, exported so executors that
// assemble the pool differently (internal/shard merges per-partition
// pools) run the exact same selection and stay byte-identical with the
// monolithic engine. Route overlaps are computed against this engine's
// store, so the pool's trajectory IDs must be valid in it.
func (e *Engine) SelectDiverseCtx(ctx context.Context, pool []Result, k int, opts DiversifyOptions) (picked []Result, err error) {
	defer recoverStoreFault(&picked, &err)
	opts, err = opts.Normalize()
	if err != nil {
		return nil, err
	}
	cancel := newCanceller(ctx)
	trace := tracerFrom(ctx)
	picked = make([]Result, 0, k)
	used := make([]bool, len(pool))
	for len(picked) < k && len(picked) < len(pool) {
		if err := cancel.check(); err != nil {
			return nil, err
		}
		bestIdx, bestMMR := -1, math.Inf(-1)
		for i, cand := range pool {
			if used[i] {
				continue
			}
			maxOverlap := 0.0
			for _, p := range picked {
				if ov := e.routeOverlap(cand.Traj, p.Traj); ov > maxOverlap {
					maxOverlap = ov
				}
			}
			mmr := (1-opts.Mu)*cand.Score - opts.Mu*maxOverlap
			if mmr > bestMMR || (mmr == bestMMR && bestIdx >= 0 && cand.Traj < pool[bestIdx].Traj) {
				bestIdx, bestMMR = i, mmr
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		if trace != nil {
			trace.Emit(obs.SpanEvent{Step: len(picked), Kind: TraceSelect, Source: -1,
				Traj: int64(pool[bestIdx].Traj), Value: bestMMR})
		}
		picked = append(picked, pool[bestIdx])
	}
	return picked, nil
}

// routeOverlap is the Jaccard similarity of two trajectories' unique
// vertex sets.
func (e *Engine) routeOverlap(a, b trajdb.TrajID) float64 {
	va := e.db.UniqueVertices(a)
	vb := e.db.UniqueVertices(b)
	i, j, inter := 0, 0, 0
	for i < len(va) && j < len(vb) {
		switch {
		case va[i] < vb[j]:
			i++
		case va[i] > vb[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(va) + len(vb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
