// Package core implements the UOTS engine — the primary contribution of
// the reproduced paper: user-oriented trajectory search over a spatial
// network, matching a set of intended query locations (spatial domain) and
// a set of travel-intention keywords (textual domain) against a trajectory
// database, with the two domains combined linearly by a preference
// parameter λ.
//
// Three algorithms are provided:
//
//   - the expansion search (the paper's algorithm): concurrent incremental
//     network expansion from every query location with upper-bound pruning,
//     early termination, and a heuristic query-source scheduling strategy;
//   - the Exhaustive baseline: full Dijkstra per query location, exact
//     scores for every trajectory;
//   - the TextFirst baseline: descending textual order with per-candidate
//     exact spatial evaluation and landmark-assisted pruning.
//
// See DESIGN.md at the repository root for the reconstruction notes: the
// similarity definitions follow the BCT `Σ e^{−d}` family the paper
// extends, and the expansion/pruning/scheduling framework follows the
// description of UOTS in the authors' later papers.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"uots/internal/index"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// MaxQueryLocations bounds the number of query locations; the engine
// tracks per-source scan state in a 64-bit mask. The paper's experiments
// use single-digit location counts.
const MaxQueryLocations = 64

// Query is a UOTS query: the places the user intends to visit, the
// keywords describing the intention, the spatial/textual preference λ, and
// the number of trajectories to recommend.
type Query struct {
	// Locations are the intended places, as network vertices (snap raw
	// coordinates with roadnet.VertexIndex first). At least one required.
	Locations []roadnet.VertexID
	// Keywords is the user's travel-intention term set (may be empty, in
	// which case the query degenerates to pure spatial search).
	Keywords textual.TermSet
	// Lambda weights spatial similarity against textual similarity:
	// SimST = λ·SimS + (1−λ)·SimT. Must be in [0, 1].
	Lambda float64
	// K is the number of trajectories to return (default 1 when zero).
	K int
}

// Errors returned by query validation.
var (
	ErrNoLocations       = errors.New("core: query needs at least one location")
	ErrTooManyLocations  = fmt.Errorf("core: more than %d query locations", MaxQueryLocations)
	ErrBadLambda         = errors.New("core: lambda must be in [0, 1]")
	ErrBadK              = errors.New("core: k must be non-negative")
	ErrLocationRange     = errors.New("core: query location outside graph")
	ErrBadThreshold      = errors.New("core: threshold must be in (0, 1]")
	ErrNilStore          = errors.New("core: engine requires a trajectory store")
	ErrEmptyStore        = errors.New("core: trajectory store is empty")
	ErrBadDistScale      = errors.New("core: DistScale must be positive")
	ErrBadRelabelEvery   = errors.New("core: RelabelEvery must be positive")
	ErrUnknownScheduling = errors.New("core: unknown scheduling strategy")
	ErrIndexMismatch     = errors.New("core: Options.Index does not cover the engine's store")
	ErrUnknownTextSim    = errors.New("core: unknown text similarity")
	ErrTrajRange         = errors.New("core: trajectory id outside store")
)

// normalize validates q against g and fills defaults, returning the
// effective query.
func (q Query) normalize(g *roadnet.Graph) (Query, error) {
	if len(q.Locations) == 0 {
		return q, ErrNoLocations
	}
	if len(q.Locations) > MaxQueryLocations {
		return q, ErrTooManyLocations
	}
	for _, v := range q.Locations {
		if v < 0 || int(v) >= g.NumVertices() {
			return q, fmt.Errorf("%w: %d (graph has %d vertices)", ErrLocationRange, v, g.NumVertices())
		}
	}
	if q.Lambda < 0 || q.Lambda > 1 || math.IsNaN(q.Lambda) {
		return q, fmt.Errorf("%w: got %g", ErrBadLambda, q.Lambda)
	}
	if q.K < 0 {
		return q, fmt.Errorf("%w: got %d", ErrBadK, q.K)
	}
	if q.K == 0 {
		q.K = 1
	}
	return q, nil
}

// Result is one recommended trajectory with its score decomposition.
type Result struct {
	Traj    trajdb.TrajID
	Score   float64   // λ·Spatial + (1−λ)·Textual
	Spatial float64   // (1/|O|)·Σ e^{−d(o,τ)/γ}
	Textual float64   // textual similarity of the keyword sets
	Dists   []float64 // network distance from each query location to τ (km); +Inf when unreachable
}

// Scheduling selects the strategy for choosing which query source (query
// location) expands next in the expansion search.
type Scheduling int

const (
	// ScheduleHeuristic is the paper's strategy: each source carries a
	// priority label — the summed spatio-textual upper bound of the
	// partly scanned trajectories the source has not yet
	// scanned — and the top-labelled source keeps expanding until a
	// relabel changes the ranking. It drives partly scanned trajectories
	// to fully scanned as fast as possible.
	ScheduleHeuristic Scheduling = iota
	// ScheduleRoundRobin cycles through sources — the "w/o heuristic"
	// ablation configuration of the paper's experiments.
	ScheduleRoundRobin
	// ScheduleMinRadius always expands the source with the smallest
	// current radius, greedily shrinking the unseen-trajectory bound.
	ScheduleMinRadius
)

// String implements fmt.Stringer.
func (s Scheduling) String() string {
	switch s {
	case ScheduleHeuristic:
		return "heuristic"
	case ScheduleRoundRobin:
		return "roundrobin"
	case ScheduleMinRadius:
		return "minradius"
	default:
		return fmt.Sprintf("Scheduling(%d)", int(s))
	}
}

// TextSim selects the textual similarity function.
type TextSim int

const (
	// TextJaccard scores |ψ∩τ.ψ| / |ψ∪τ.ψ| (the default).
	TextJaccard TextSim = iota
	// TextCosineIDF scores the IDF-weighted cosine of the two keyword
	// sets, rewarding matches on rare terms.
	TextCosineIDF
)

// String implements fmt.Stringer.
func (t TextSim) String() string {
	switch t {
	case TextJaccard:
		return "jaccard"
	case TextCosineIDF:
		return "cosine-idf"
	default:
		return fmt.Sprintf("TextSim(%d)", int(t))
	}
}

// Options configures an Engine. The zero value selects the paper
// configuration: heuristic scheduling, Jaccard text similarity, γ = 1 km.
type Options struct {
	// Scheduling is the query-source scheduling strategy.
	Scheduling Scheduling
	// TextSim is the textual similarity function.
	TextSim TextSim
	// DistScale is γ, the kilometres-to-similarity scale of the spatial
	// kernel e^{−d/γ}. Default 1.
	DistScale float64
	// RelabelEvery is the number of expansion steps between periodic
	// bound/label refreshes and termination checks. Default 64.
	RelabelEvery int
	// DisableTextProbe turns off adaptive candidate generation (directly
	// computing the spatial distances of a termination-blocking,
	// textually top-ranked trajectory). Exposed for ablation benches.
	DisableTextProbe bool
	// ProbeRadiusFactor sets the probe policy's radius floor, in units of
	// DistScale: textual blockers that would stop blocking once every
	// expansion radius reaches ProbeRadiusFactor·γ are left to the
	// expansion; only blockers that survive even that radius are resolved
	// with direct distance probes. Default 2.5.
	ProbeRadiusFactor float64
	// Landmarks, when non-nil, provides ALT network-distance lower bounds
	// (roadnet.NewLandmarks) that let the engine discard
	// termination-blocking textual candidates without running any
	// Dijkstra: a lower bound on every query-location distance
	// upper-bounds the spatial similarity. Optional; a systems-level
	// optimization flagged as an extension in DESIGN.md.
	Landmarks *roadnet.Landmarks
	// Index, when non-nil, provides precomputed per-trajectory landmark
	// interval bounds (index.NewTrajBounds) and supersedes Landmarks for
	// spatial upper-bounding: bounds cost O(K) per (location, trajectory)
	// with no store access, which additionally enables the admission-time
	// prune in the expansion scan loop. The index must cover exactly the
	// engine's store (same dense IDs); NewEngine rejects a size mismatch.
	Index *index.TrajBounds
}

func (o Options) normalize() (Options, error) {
	if o.DistScale == 0 {
		o.DistScale = 1
	}
	if o.DistScale < 0 || math.IsNaN(o.DistScale) {
		return o, fmt.Errorf("%w: got %g", ErrBadDistScale, o.DistScale)
	}
	if o.RelabelEvery == 0 {
		o.RelabelEvery = 64
	}
	if o.RelabelEvery < 0 {
		return o, fmt.Errorf("%w: got %d", ErrBadRelabelEvery, o.RelabelEvery)
	}
	if o.ProbeRadiusFactor == 0 {
		o.ProbeRadiusFactor = 2.5
	}
	if o.ProbeRadiusFactor < 0 || math.IsNaN(o.ProbeRadiusFactor) {
		return o, fmt.Errorf("core: ProbeRadiusFactor must be positive, got %g", o.ProbeRadiusFactor)
	}
	switch o.Scheduling {
	case ScheduleHeuristic, ScheduleRoundRobin, ScheduleMinRadius:
	default:
		return o, fmt.Errorf("%w: %d", ErrUnknownScheduling, int(o.Scheduling))
	}
	switch o.TextSim {
	case TextJaccard, TextCosineIDF:
	default:
		return o, fmt.Errorf("%w: %d", ErrUnknownTextSim, int(o.TextSim))
	}
	return o, nil
}

// SearchStats reports the work a single query performed — the "number of
// visited trajectories" metric of the paper's evaluation plus supporting
// counters.
type SearchStats struct {
	// VisitedTrajectories is the number of distinct trajectories touched
	// (scanned by expansion, text-scored into candidacy, or evaluated by a
	// baseline) — the paper's data-access metric.
	VisitedTrajectories int
	// ScanEvents counts (query source, trajectory) scan events during
	// expansion.
	ScanEvents int
	// SettledVertices counts Dijkstra-settled vertices across all query
	// sources and probe searches.
	SettledVertices int
	// Candidates is the number of trajectories whose exact score was
	// computed.
	Candidates int
	// TextScored is the number of trajectories scored by the textual
	// index.
	TextScored int
	// Probes counts adaptive text-probe distance computations.
	Probes int
	// SharedBoundPrunes counts candidates pruned against a cross-partition
	// SharedBound that the local top-k threshold alone would have kept —
	// the work the shard executor's bound exchange saves. Always 0 outside
	// sharded execution.
	SharedBoundPrunes int
	// LandmarkPrunes counts trajectories discarded purely from landmark
	// lower bounds (Options.Landmarks or Options.Index): their spatial
	// upper bound fell below the bar before any exact distance was
	// computed, so no Dijkstra or record access was spent on them.
	LandmarkPrunes int
	// EarlyTerminated reports whether the upper bound dropped below the
	// pruning threshold before the search space was exhausted.
	EarlyTerminated bool
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
}

// Add accumulates other's work counters into s (used by the batch
// engine and the sharded scatter-gather executor). EarlyTerminated is
// not folded: its meaning across several searches is the caller's call.
func (s *SearchStats) Add(other SearchStats) {
	s.VisitedTrajectories += other.VisitedTrajectories
	s.ScanEvents += other.ScanEvents
	s.SettledVertices += other.SettledVertices
	s.Candidates += other.Candidates
	s.TextScored += other.TextScored
	s.Probes += other.Probes
	s.SharedBoundPrunes += other.SharedBoundPrunes
	s.LandmarkPrunes += other.LandmarkPrunes
	s.Elapsed += other.Elapsed
}
