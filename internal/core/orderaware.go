package core

import (
	"context"
	"math"

	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// Order-aware search (an extension: the research line lists
// visiting-sequence matching as future work). The query locations are
// interpreted as an ordered itinerary o₁ → o₂ → … → o_n, and the spatial
// similarity becomes
//
//	SimS↑(q, τ) = (1/|O|) · max over j₁ ≤ j₂ ≤ … ≤ j_n of Σᵢ e^{−sd(oᵢ, p_{jᵢ})/γ},
//
// the best order-preserving assignment of query locations to trajectory
// samples. Because every assignment is dominated by the unconstrained
// minima, SimS↑ ≤ SimS, so the unordered top-K′ retrieval is an admissible
// filter: once the K′-th unordered combined score cannot beat the k-th
// ordered one, the ordered top-k is exact.

// OrderAwareEvaluate computes the exact order-aware Result of one
// trajectory: per-(location, sample) network distances from |O| Dijkstra
// runs, then an O(|O|·m) dynamic program for the best order-preserving
// assignment.
func (e *Engine) OrderAwareEvaluate(q Query, id trajdb.TrajID) (res Result, err error) {
	defer recoverStoreFault(nil, &err)
	q, err = q.normalize(e.g)
	if err != nil {
		return Result{}, err
	}
	if id < 0 || int(id) >= e.db.NumTrajectories() {
		return Result{}, ErrTrajRange
	}
	sssp := roadnet.NewSSSP(e.g)
	return e.orderAwareResult(sssp, q, id), nil
}

func (e *Engine) orderAwareResult(sssp *roadnet.SSSP, q Query, id trajdb.TrajID) Result {
	traj := e.db.Traj(id)
	m := traj.Len()
	n := len(q.Locations)

	// kernelAt[i][j] = e^{−sd(oᵢ, p_j)/γ}; unreached samples contribute 0.
	kernelAt := make([][]float64, n)
	dists := make([]float64, n) // unordered minima, reported for context
	uniq := e.db.UniqueVertices(id)
	for i, o := range q.Locations {
		remaining := len(uniq)
		vertexDist := make(map[roadnet.VertexID]float64, len(uniq))
		sssp.RunUntil(o, func(v roadnet.VertexID, d float64) bool {
			if e.db.ContainsVertex(id, v) {
				vertexDist[v] = d
				remaining--
				if remaining == 0 {
					return false
				}
			}
			return true
		})
		row := make([]float64, m)
		best := math.Inf(1)
		for j, s := range traj.Samples {
			if d, ok := vertexDist[s.V]; ok {
				row[j] = e.kernel(d)
				if d < best {
					best = d
				}
			}
		}
		kernelAt[i] = row
		dists[i] = best
	}

	// DP over (location index, sample index): dp[j] after processing
	// location i = best Σ for o₁..oᵢ assigned within samples p₁..p_j.
	dp := make([]float64, m)
	next := make([]float64, m)
	for j := range dp {
		dp[j] = math.Inf(-1)
	}
	run := math.Inf(-1)
	for j := 0; j < m; j++ {
		if kernelAt[0][j] > run {
			run = kernelAt[0][j]
		}
		dp[j] = run
	}
	for i := 1; i < n; i++ {
		run = math.Inf(-1)
		for j := 0; j < m; j++ {
			// Assign oᵢ to p_j on top of the best prefix ending at or
			// before j for the previous location (jᵢ₋₁ ≤ jᵢ allowed equal).
			cand := dp[j] + kernelAt[i][j]
			if j > 0 && next[j-1] > cand {
				cand = next[j-1]
			}
			if cand > run {
				run = cand
			}
			next[j] = run
		}
		dp, next = next, dp
	}
	spatial := dp[m-1] / float64(n)
	if math.IsInf(spatial, -1) || math.IsNaN(spatial) {
		spatial = 0
	}
	text := e.textScore(q.Keywords, id)
	return Result{
		Traj:    id,
		Score:   combine(q.Lambda, spatial, text),
		Spatial: spatial,
		Textual: text,
		Dists:   dists,
	}
}

// OrderAwareSearch answers a top-k query under the order-aware spatial
// similarity. It retrieves unordered top-K′ candidates with the expansion
// search, reranks them with the exact order-aware score, and doubles K′
// until the unordered bound certifies the ordered top-k — an exact
// algorithm, since the unordered score upper-bounds the ordered one.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) OrderAwareSearch(q Query) ([]Result, SearchStats, error) {
	return e.OrderAwareSearchCtx(context.Background(), q)
}

// OrderAwareSearchCtx is OrderAwareSearch with cancellation: the
// underlying unordered retrieval polls ctx, and the reranking loop polls
// between per-trajectory scorings (each one runs |O| Dijkstras, so the
// poll interval is one trajectory).
func (e *Engine) OrderAwareSearchCtx(ctx context.Context, q Query) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	cancel := newCanceller(ctx)
	trace := tracerFrom(ctx)
	var total SearchStats
	sssp := roadnet.NewSSSP(e.g)
	kPrime := q.K * 4
	if kPrime < 16 {
		kPrime = 16
	}
	for round := 0; ; round++ {
		uq := q
		uq.K = kPrime
		unordered, stats, err := e.SearchCtx(ctx, uq)
		total.Add(stats)
		if err != nil {
			total.Elapsed = elapsed()
			return nil, total, err
		}

		reranked := make([]Result, len(unordered))
		for i, r := range unordered {
			if err := cancel.check(); err != nil {
				total.Elapsed = elapsed()
				return nil, total, err
			}
			reranked[i] = e.orderAwareResult(sssp, q, r.Traj)
			total.Probes++
		}
		sortResults(reranked)
		if len(reranked) > q.K {
			reranked = reranked[:q.K]
		}
		if trace != nil {
			bound := 0.0
			if len(unordered) > 0 {
				bound = unordered[len(unordered)-1].Score
			}
			trace.Emit(obs.SpanEvent{Step: round, Kind: TraceRerank, Source: -1, Traj: -1,
				Value: float64(kPrime), Extra: bound})
		}

		// Certification: every trajectory outside the unordered top-K′ has
		// unordered score ≤ the K′-th unordered score, and ordered ≤
		// unordered, so if the k-th ordered beats that bound we are done.
		if len(unordered) < kPrime {
			// The store has fewer trajectories than K′: everything was
			// considered.
			total.EarlyTerminated = false
			total.Elapsed = elapsed()
			return reranked, total, nil
		}
		bound := unordered[len(unordered)-1].Score
		if len(reranked) == q.K && reranked[q.K-1].Score >= bound {
			total.EarlyTerminated = true
			total.Elapsed = elapsed()
			return reranked, total, nil
		}
		kPrime *= 2
	}
}
