package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// TestExpansionMatchesExhaustiveOnRandomWorlds is the heavy property test:
// fresh tiny worlds (graph + corpus + vocabulary) per trial, random query
// shapes, exact agreement with ground truth required every time.
func TestExpansionMatchesExhaustiveOnRandomWorlds(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		seed := uint64(1000 + trial)
		rng := rand.New(rand.NewPCG(seed, seed^77))

		style := roadnet.StyleSparse
		if trial%2 == 0 {
			style = roadnet.StyleDense
		}
		g, err := roadnet.GenerateCity(roadnet.CityOptions{
			Rows: 6 + rng.IntN(10), Cols: 6 + rng.IntN(10),
			Style: style, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		vocab := textual.GenerateVocab(1+rng.IntN(5), 5+rng.IntN(30), 1.0, seed)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count:       1 + rng.IntN(200),
			MeanSamples: 2 + rng.IntN(25),
			Vocab:       vocab,
			Seed:        seed ^ 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(db, Options{RelabelEvery: 1 + rng.IntN(100)})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 4; qi++ {
			locs := make([]roadnet.VertexID, 1+rng.IntN(6))
			for i := range locs {
				locs[i] = roadnet.VertexID(rng.IntN(g.NumVertices()))
			}
			var kws textual.TermSet
			if rng.IntN(4) > 0 {
				kws = vocab.DrawQueryTerms(rng.IntN(vocab.NumTopics()), 1+rng.IntN(4), 0.7, rng)
			}
			q := Query{
				Locations: locs,
				Keywords:  kws,
				Lambda:    float64(rng.IntN(11)) / 10,
				K:         1 + rng.IntN(12),
			}
			want, _, err := e.ExhaustiveSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := e.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			sameScores(t, "random world", got, want)
		}
	}
}

// TestExpansionDuplicateLocations pins the semantics of a query repeating
// the same place: each repetition is an independent query source and the
// score must match the exhaustive evaluation of the same repeated list.
func TestExpansionDuplicateLocations(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(301, 302))
	v := roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	q := Query{
		Locations: []roadnet.VertexID{v, v, v},
		Keywords:  f.vocab.DrawQueryTerms(0, 2, 0.8, rng),
		Lambda:    0.6,
		K:         4,
	}
	want, _, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "duplicate locations", got, want)
	// With all locations identical, spatial similarity equals the kernel
	// of the single distance, so Dists entries must agree.
	for _, r := range got {
		if len(r.Dists) == 3 && (r.Dists[0] != r.Dists[1] || r.Dists[1] != r.Dists[2]) {
			t.Errorf("duplicate sources report different distances: %v", r.Dists)
		}
	}
}

// TestQueryLocationOnTrajectory pins the d=0 case: a query location lying
// on a trajectory contributes kernel(0)=1 to its spatial score.
func TestQueryLocationOnTrajectory(t *testing.T) {
	e, f := testEngineDefault(t)
	id := trajdb.TrajID(0)
	v := f.db.Traj(id).Samples[0].V
	res, err := e.Evaluate(Query{Locations: []roadnet.VertexID{v}, Lambda: 1, K: 1}, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dists[0] != 0 {
		t.Fatalf("distance to own vertex = %g", res.Dists[0])
	}
	if math.Abs(res.Spatial-1) > 1e-12 {
		t.Fatalf("spatial = %g, want 1", res.Spatial)
	}
	// And the search must rank it with score 1 at λ=1.
	got, _, err := e.Search(Query{Locations: []roadnet.VertexID{v}, Lambda: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0].Score-1) > 1e-12 {
		t.Fatalf("top score = %g, want 1", got[0].Score)
	}
}

// TestSingleTrajectoryStore drives the engine against a minimal store.
func TestSingleTrajectoryStore(t *testing.T) {
	f := testFixture(t)
	vocab := textual.NewVocab()
	b := trajdb.NewBuilder(f.g, vocab)
	if _, err := b.AddWithKeywords([]trajdb.Sample{{V: 5, T: 100}}, []string{"solo"}); err != nil {
		t.Fatal(err)
	}
	db := b.Freeze()
	e, err := NewEngine(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kw, _ := vocab.Lookup("solo")
	q := Query{
		Locations: []roadnet.VertexID{5, 20},
		Keywords:  textual.NewTermSet([]textual.TermID{kw}),
		Lambda:    0.5,
		K:         3,
	}
	res, _, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Traj != 0 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Textual != 1 {
		t.Errorf("textual = %g, want 1", res[0].Textual)
	}
	// The threshold variant agrees.
	th, _, err := e.SearchThreshold(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if (len(th) == 1) != (res[0].Score >= 0.3) {
		t.Errorf("threshold variant disagreement: score %g, qualified %d", res[0].Score, len(th))
	}
}

// TestRelabelEveryOne runs the most aggressive rescan cadence, which must
// not change results, only cost.
func TestRelabelEveryOne(t *testing.T) {
	f := testFixture(t)
	aggressive, err := NewEngine(f.db, Options{RelabelEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewEngine(f.db, Options{RelabelEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(401, 402))
	for trial := 0; trial < 5; trial++ {
		q := f.randomQuery(rng, 3, 3, 0.5, 5)
		a, _, err := aggressive.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := lazy.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, "relabel cadence", a, b)
	}
}

// TestThresholdOneReturnsOnlyPerfectMatches pins θ=1: only trajectories
// with both spatial and textual similarity 1 qualify.
func TestThresholdOneReturnsOnlyPerfectMatches(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(501, 502))
	q := f.randomQuery(rng, 2, 2, 0.5, 1)
	res, _, err := e.SearchThreshold(q, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score < 1-scoreTol {
			t.Errorf("θ=1 returned score %g", r.Score)
		}
	}
}

// TestMonotoneK: growing k only appends results; the prefix is stable.
func TestMonotoneK(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(601, 602))
	q := f.randomQuery(rng, 3, 3, 0.5, 1)
	var prev []Result
	for _, k := range []int{1, 3, 7, 15} {
		q.K = k
		res, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prev {
			if math.Abs(prev[i].Score-res[i].Score) > scoreTol {
				t.Fatalf("k=%d changed rank-%d score: %g vs %g", k, i, prev[i].Score, res[i].Score)
			}
		}
		prev = res
	}
}

// TestThresholdMonotone: lowering θ only grows the qualified set.
func TestThresholdMonotone(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(701, 702))
	q := f.randomQuery(rng, 2, 3, 0.4, 1)
	prevCount := 0
	for _, theta := range []float64{0.9, 0.7, 0.5, 0.3} {
		res, _, err := e.SearchThreshold(q, theta)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) < prevCount {
			t.Fatalf("θ=%g returned %d < previous %d", theta, len(res), prevCount)
		}
		prevCount = len(res)
	}
}

// TestDensifiedCorpusImprovesSpatialScores pins the semantics of
// trajdb.Densify: distances to a superset of route points can only
// shrink, so every trajectory's spatial similarity is at least its
// undensified value.
func TestDensifiedCorpusImprovesSpatialScores(t *testing.T) {
	f := testFixture(t)
	dense, err := trajdb.Densify(f.db)
	if err != nil {
		t.Fatal(err)
	}
	sparseEngine, err := NewEngine(f.db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	denseEngine, err := NewEngine(dense, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(901, 902))
	q := f.randomQuery(rng, 3, 0, 1, 1)
	for trial := 0; trial < 20; trial++ {
		id := trajdb.TrajID(rng.IntN(f.db.NumTrajectories()))
		sparse, err := sparseEngine.Evaluate(q, id)
		if err != nil {
			t.Fatal(err)
		}
		denseRes, err := denseEngine.Evaluate(q, id)
		if err != nil {
			t.Fatal(err)
		}
		if denseRes.Spatial < sparse.Spatial-1e-9 {
			t.Fatalf("traj %d: densified spatial %g below sparse %g", id, denseRes.Spatial, sparse.Spatial)
		}
		for i := range sparse.Dists {
			if denseRes.Dists[i] > sparse.Dists[i]+1e-9 {
				t.Fatalf("traj %d: densified distance %g exceeds sparse %g", id, denseRes.Dists[i], sparse.Dists[i])
			}
		}
	}
}
