package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"uots/internal/index"
	"uots/internal/pqueue"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// ExhaustiveSearch answers a top-k UOTS query with the brute-force
// comparator: one full Dijkstra per query location (exact distance fields
// over the whole network), then an exact score for every trajectory in the
// store. It visits every trajectory and serves as the ground truth the
// expansion algorithm is validated against, and as the "no pruning" end of
// the experiment spectrum.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) ExhaustiveSearch(q Query) ([]Result, SearchStats, error) {
	return e.ExhaustiveSearchCtx(context.Background(), q)
}

// ExhaustiveSearchCtx is ExhaustiveSearch with cancellation: both the
// Dijkstra field computation and the scoring scan poll ctx at bounded
// intervals (see SearchCtx).
func (e *Engine) ExhaustiveSearchCtx(ctx context.Context, q Query) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	topk := pqueue.NewTopK[Result](q.K)
	stats, err = e.exhaustiveScan(ctx, q, func(r Result) {
		topk.Offer(r.Score, int64(r.Traj), r)
	})
	stats.Elapsed = elapsed()
	if err != nil {
		return nil, stats, err
	}
	results = topk.Results()
	return results, stats, nil
}

// ExhaustiveThreshold answers the threshold variant exhaustively.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) ExhaustiveThreshold(q Query, theta float64) ([]Result, SearchStats, error) {
	return e.ExhaustiveThresholdCtx(context.Background(), q, theta)
}

// ExhaustiveThresholdCtx is ExhaustiveThreshold with cancellation.
func (e *Engine) ExhaustiveThresholdCtx(ctx context.Context, q Query, theta float64) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if !(theta > 0) || theta > 1 || math.IsNaN(theta) {
		return nil, SearchStats{}, ErrBadThreshold
	}
	stats, err = e.exhaustiveScan(ctx, q, func(r Result) {
		if r.Score >= theta {
			results = append(results, r)
		}
	})
	stats.Elapsed = elapsed()
	if err != nil {
		return nil, stats, err
	}
	sortResults(results)
	return results, stats, nil
}

// exhaustiveScan computes the exact Result of every trajectory and feeds
// it to sink, returning the work counters. Cancellation is polled every
// cancelPollEvery scored trajectories and every 1024 settled vertices, so
// even the full-network Dijkstra phase aborts promptly.
func (e *Engine) exhaustiveScan(ctx context.Context, q Query, sink func(Result)) (SearchStats, error) {
	var stats SearchStats
	cancel := newCanceller(ctx)
	n := e.db.NumTrajectories()
	fields := make([][]float64, len(q.Locations))
	sssp := roadnet.NewSSSP(e.g)
	var cancelErr error
	for i, o := range q.Locations {
		sssp.RunUntil(o, func(roadnet.VertexID, float64) bool {
			stats.SettledVertices++
			if stats.SettledVertices%1024 == 0 {
				if cancelErr = cancel.check(); cancelErr != nil {
					return false
				}
			}
			return true
		})
		if cancelErr != nil {
			return stats, cancelErr
		}
		field := make([]float64, e.g.NumVertices())
		for v := range field {
			field[v] = sssp.Dist(roadnet.VertexID(v))
		}
		fields[i] = field
	}
	for id := 0; id < n; id++ {
		if id%cancelPollEvery == 0 {
			if err := cancel.check(); err != nil {
				stats.VisitedTrajectories, stats.Candidates, stats.TextScored = id, id, id
				return stats, err
			}
		}
		tid := trajdb.TrajID(id)
		verts := e.db.UniqueVertices(tid)
		dists := make([]float64, len(q.Locations))
		for i := range dists {
			best := math.Inf(1)
			for _, v := range verts {
				if d := fields[i][v]; d < best {
					best = d
				}
			}
			dists[i] = best
		}
		spatial := e.spatialFromDists(dists)
		text := e.textScore(q.Keywords, tid)
		sink(Result{
			Traj:    tid,
			Score:   combine(q.Lambda, spatial, text),
			Spatial: spatial,
			Textual: text,
			Dists:   dists,
		})
	}
	stats.VisitedTrajectories = n
	stats.Candidates = n
	stats.TextScored = n
	return stats, nil
}

// TextFirstOptions tunes the TextFirst baseline.
type TextFirstOptions struct {
	// Landmarks, when non-nil, provides network-distance lower bounds used
	// to skip exact spatial evaluations that provably cannot qualify.
	Landmarks *roadnet.Landmarks
	// Index, when non-nil, supersedes Landmarks with the precomputed
	// per-trajectory interval bounds: O(K) per (location, candidate) and
	// no store access, versus the O(K·|τ|) vertex-set scan (a record
	// fault per candidate on a disk store) the raw ALT tables need.
	Index *index.TrajBounds
}

// TextFirstSearch answers a top-k UOTS query with the one-domain-first
// baseline: trajectories are visited in descending textual-similarity
// order; each visit computes the exact spatial similarity with
// early-terminating Dijkstras; the scan stops once even a spatially
// perfect trajectory could not beat the current k-th best. Because a
// trajectory with zero textual score can still win on spatial similarity
// alone, the baseline must fall back to scanning the zero-text tail
// whenever the bar allows it — the structural weakness the paper's
// expansion algorithm removes.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) TextFirstSearch(q Query, opts TextFirstOptions) ([]Result, SearchStats, error) {
	return e.TextFirstSearchCtx(context.Background(), q, opts)
}

// TextFirstSearchCtx is TextFirstSearch with cancellation: the candidate
// scan polls ctx between per-trajectory evaluations and inside each
// evaluation's Dijkstras (see SearchCtx).
func (e *Engine) TextFirstSearchCtx(ctx context.Context, q Query, opts TextFirstOptions) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	elapsed := stopwatch()
	q, err = q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if opts.Index != nil && opts.Index.NumTrajectories() != e.db.NumTrajectories() {
		return nil, SearchStats{}, fmt.Errorf("%w: index covers %d trajectories, store has %d",
			ErrIndexMismatch, opts.Index.NumTrajectories(), e.db.NumTrajectories())
	}
	cancel := newCanceller(ctx)
	topk := pqueue.NewTopK[Result](q.K)
	sssp := roadnet.NewSSSP(e.g)

	var cancelErr error
	evaluate := func(tid trajdb.TrajID, text float64) {
		stats.VisitedTrajectories++
		// Landmark pruning: a lower bound on every query-location distance
		// upper-bounds the spatial similarity.
		if bar, ok := topk.Threshold(); ok && (opts.Index != nil || opts.Landmarks != nil) {
			ubSpatial := 0.0
			if opts.Index != nil {
				for _, o := range q.Locations {
					ubSpatial += e.kernel(opts.Index.LowerBound(o, tid))
				}
			} else {
				for _, o := range q.Locations {
					lb := opts.Landmarks.LowerBoundToSet(o, e.db.UniqueVertices(tid))
					ubSpatial += e.kernel(lb)
				}
			}
			ubSpatial /= float64(len(q.Locations))
			if combine(q.Lambda, ubSpatial, text) < bar {
				stats.LandmarkPrunes++
				return
			}
		}
		dists := make([]float64, len(q.Locations))
		for i, o := range q.Locations {
			sssp.RunUntil(o, func(v roadnet.VertexID, d float64) bool {
				stats.SettledVertices++
				if stats.SettledVertices%1024 == 0 {
					if cancelErr = cancel.check(); cancelErr != nil {
						return false
					}
				}
				if e.db.ContainsVertex(tid, v) {
					dists[i] = d
					return false
				}
				return true
			})
			if cancelErr != nil {
				return
			}
			if dists[i] == 0 && !e.db.ContainsVertex(tid, o) {
				dists[i] = math.Inf(1) // unreachable from o
			}
		}
		spatial := e.spatialFromDists(dists)
		stats.Candidates++
		topk.Offer(combine(q.Lambda, spatial, text), int64(tid), Result{
			Traj:    tid,
			Score:   combine(q.Lambda, spatial, text),
			Spatial: spatial,
			Textual: text,
			Dists:   dists,
		})
	}

	// Phase 1: descending textual order.
	type scored struct {
		id   trajdb.TrajID
		text float64
	}
	var ranked []scored
	inRanked := make(map[trajdb.TrajID]bool)
	if len(q.Keywords) > 0 {
		docs := e.db.TextIndex().DocsWithAny(q.Keywords)
		stats.TextScored = len(docs)
		ranked = make([]scored, 0, len(docs))
		for i, d := range docs {
			if i%cancelPollEvery == 0 {
				if err := cancel.check(); err != nil {
					stats.Elapsed = elapsed()
					return nil, stats, err
				}
			}
			id := trajdb.TrajID(d)
			ranked = append(ranked, scored{id, e.textScore(q.Keywords, id)})
			inRanked[id] = true
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].text != ranked[j].text {
				return ranked[i].text > ranked[j].text
			}
			return ranked[i].id < ranked[j].id
		})
	}
	for _, s := range ranked {
		if err := cancel.check(); err != nil {
			stats.Elapsed = elapsed()
			return nil, stats, err
		}
		if bar, ok := topk.Threshold(); ok && combine(q.Lambda, 1, s.text) < bar {
			stats.EarlyTerminated = true
			break
		}
		evaluate(s.id, s.text)
		if cancelErr != nil {
			stats.Elapsed = elapsed()
			return nil, stats, cancelErr
		}
	}

	// Phase 2: the zero-text tail, unless even a spatially perfect
	// zero-text trajectory cannot qualify.
	if bar, ok := topk.Threshold(); !ok || combine(q.Lambda, 1, 0) >= bar {
		for id := 0; id < e.db.NumTrajectories(); id++ {
			tid := trajdb.TrajID(id)
			if inRanked[tid] {
				continue
			}
			if id%cancelPollEvery == 0 {
				if err := cancel.check(); err != nil {
					stats.Elapsed = elapsed()
					return nil, stats, err
				}
			}
			if bar, ok := topk.Threshold(); ok && combine(q.Lambda, 1, 0) < bar {
				stats.EarlyTerminated = true
				break
			}
			evaluate(tid, 0)
			if cancelErr != nil {
				stats.Elapsed = elapsed()
				return nil, stats, cancelErr
			}
		}
	} else {
		stats.EarlyTerminated = true
	}

	results = topk.Results()
	stats.Elapsed = elapsed()
	return results, stats, nil
}
