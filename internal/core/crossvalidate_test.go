package core

import (
	"math/rand/v2"
	"testing"

	"uots/internal/roadnet"
)

// TestExpansionMatchesExhaustiveTopK is the central correctness test: over
// a grid of λ, |O|, |ψ| and k, the expansion search must return the same
// top-k scores as the exhaustive ground truth, for every scheduling
// strategy and with/without text probing.
func TestExpansionMatchesExhaustiveTopK(t *testing.T) {
	configs := []Options{
		{Scheduling: ScheduleHeuristic},
		{Scheduling: ScheduleRoundRobin},
		{Scheduling: ScheduleMinRadius},
		{Scheduling: ScheduleHeuristic, DisableTextProbe: true},
		{Scheduling: ScheduleHeuristic, RelabelEvery: 7},
	}
	for ci, opts := range configs {
		e, f := newTestEngine(t, opts)
		rng := rand.New(rand.NewPCG(uint64(100+ci), 5))
		for trial := 0; trial < 12; trial++ {
			nLoc := 1 + rng.IntN(5)
			nKw := rng.IntN(5)
			lambda := [6]float64{0, 0.1, 0.3, 0.5, 0.9, 1.0}[rng.IntN(6)]
			k := 1 + rng.IntN(8)
			q := f.randomQuery(rng, nLoc, nKw, lambda, k)

			want, _, err := e.ExhaustiveSearch(q)
			if err != nil {
				t.Fatalf("config %d trial %d: exhaustive: %v", ci, trial, err)
			}
			got, _, err := e.Search(q)
			if err != nil {
				t.Fatalf("config %d trial %d: expansion: %v", ci, trial, err)
			}
			sameScores(t, opts.Scheduling.String(), got, want)
		}
	}
}

// TestTextFirstMatchesExhaustive validates the second baseline against the
// same ground truth.
func TestTextFirstMatchesExhaustive(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 10; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), rng.IntN(5), [5]float64{0, 0.2, 0.5, 0.8, 1}[rng.IntN(5)], 1+rng.IntN(5))
		want, _, err := e.ExhaustiveSearch(q)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		got, _, err := e.TextFirstSearch(q, TextFirstOptions{})
		if err != nil {
			t.Fatalf("trial %d: textfirst: %v", trial, err)
		}
		sameScores(t, "textfirst", got, want)
	}
}

// TestTextFirstWithLandmarksMatchesExhaustive validates that the landmark
// pruning inside the TextFirst baseline never changes its answers.
func TestTextFirstWithLandmarksMatchesExhaustive(t *testing.T) {
	e, f := testEngineDefault(t)
	lm := roadnet.NewLandmarks(f.g, 8, 0)
	rng := rand.New(rand.NewPCG(52, 53))
	for trial := 0; trial < 8; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), rng.IntN(4), [4]float64{0.1, 0.4, 0.7, 1}[rng.IntN(4)], 1+rng.IntN(5))
		want, _, err := e.ExhaustiveSearch(q)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		got, _, err := e.TextFirstSearch(q, TextFirstOptions{Landmarks: lm})
		if err != nil {
			t.Fatalf("trial %d: textfirst+landmarks: %v", trial, err)
		}
		sameScores(t, "textfirst-landmarks", got, want)
	}
}

// TestThresholdMatchesExhaustive validates the threshold variant: the
// expansion search must find exactly the trajectories the exhaustive scan
// finds above θ.
func TestThresholdMatchesExhaustive(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < 12; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), rng.IntN(5), [5]float64{0, 0.2, 0.5, 0.8, 1}[rng.IntN(5)], 1)
		theta := 0.3 + 0.6*rng.Float64()
		want, _, err := e.ExhaustiveThreshold(q, theta)
		if err != nil {
			t.Fatalf("trial %d: exhaustive threshold: %v", trial, err)
		}
		got, _, err := e.SearchThreshold(q, theta)
		if err != nil {
			t.Fatalf("trial %d: expansion threshold: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (θ=%.3f λ=%.1f): got %d qualified, want %d",
				trial, theta, q.Lambda, len(got), len(want))
		}
		gotIDs := make(map[int32]bool, len(got))
		for _, r := range got {
			gotIDs[int32(r.Traj)] = true
			if r.Score < theta-scoreTol {
				t.Errorf("trial %d: qualified trajectory %d has score %.6f < θ=%.6f", trial, r.Traj, r.Score, theta)
			}
		}
		for _, r := range want {
			if !gotIDs[int32(r.Traj)] {
				t.Errorf("trial %d: missing qualified trajectory %d (score %.6f ≥ θ=%.6f)", trial, r.Traj, r.Score, theta)
			}
		}
	}
}

// TestEvaluateAgreesWithExhaustive checks the single-trajectory reference
// scorer against the exhaustive scan's decomposition.
func TestEvaluateAgreesWithExhaustive(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(5, 6))
	q := f.randomQuery(rng, 3, 3, 0.5, 10)
	want, _, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	for _, w := range want {
		got, err := e.Evaluate(q, w.Traj)
		if err != nil {
			t.Fatalf("Evaluate(%d): %v", w.Traj, err)
		}
		if d := got.Score - w.Score; d > scoreTol || d < -scoreTol {
			t.Errorf("Evaluate(%d) score %.12f, exhaustive %.12f", w.Traj, got.Score, w.Score)
		}
		if d := got.Spatial - w.Spatial; d > scoreTol || d < -scoreTol {
			t.Errorf("Evaluate(%d) spatial %.12f, exhaustive %.12f", w.Traj, got.Spatial, w.Spatial)
		}
		if got.Textual != w.Textual {
			t.Errorf("Evaluate(%d) textual %.12f, exhaustive %.12f", w.Traj, got.Textual, w.Textual)
		}
	}
}

func testEngineDefault(t *testing.T) (*Engine, fixture) {
	t.Helper()
	return newTestEngine(t, Options{})
}
