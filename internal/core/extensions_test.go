package core

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// TimeWindow.Contains and Validate boundary tests live in
// timewindow_test.go.

func TestSearchWindowedMatchesFilteredExhaustive(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(201, 202))
	windows := []TimeWindow{
		{From: 6 * 3600, To: 12 * 3600},
		{From: 12 * 3600, To: 20 * 3600},
		{From: 20 * 3600, To: 6 * 3600}, // wraps
	}
	for trial := 0; trial < 9; trial++ {
		w := windows[trial%len(windows)]
		lambda := [3]float64{0, 0.4, 1}[trial%3]
		q := f.randomQuery(rng, 2, 3, lambda, 5)

		got, _, err := e.SearchWindowed(q, w)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: exhaustive over the filtered subset.
		var want []Result
		e.exhaustiveScan(context.Background(), mustNormalize(t, q, e), func(r Result) {
			if w.Contains(f.db.Traj(r.Traj).Start()) {
				want = append(want, r)
			}
		})
		sortResults(want)
		if len(want) > q.K {
			want = want[:q.K]
		}
		sameScores(t, "windowed", got, want)
		for _, r := range got {
			if !w.Contains(f.db.Traj(r.Traj).Start()) {
				t.Fatalf("result %d departs outside the window", r.Traj)
			}
		}
	}
	if _, _, err := e.SearchWindowed(Query{Locations: nil}, TimeWindow{From: -5}); !errors.Is(err, ErrBadWindow) {
		t.Errorf("invalid window: %v", err)
	}
}

func mustNormalize(t *testing.T, q Query, e *Engine) Query {
	t.Helper()
	nq, err := q.normalize(e.g)
	if err != nil {
		t.Fatal(err)
	}
	return nq
}

// orderAwareBrute computes the order-aware spatial similarity by checking
// every monotone assignment explicitly (exponential; tiny inputs only).
func orderAwareBrute(e *Engine, q Query, id trajdb.TrajID) float64 {
	traj := e.db.Traj(id)
	m := traj.Len()
	n := len(q.Locations)
	// Exact per-pair distances via one full Dijkstra per location.
	kernelAt := make([][]float64, n)
	sssp := roadnet.NewSSSP(e.g)
	for i, o := range q.Locations {
		sssp.Run(o)
		row := make([]float64, m)
		for j, s := range traj.Samples {
			row[j] = e.kernel(sssp.Dist(s.V))
		}
		kernelAt[i] = row
	}
	var rec func(i, minJ int) float64
	rec = func(i, minJ int) float64 {
		if i == n {
			return 0
		}
		best := math.Inf(-1)
		for j := minJ; j < m; j++ {
			if v := kernelAt[i][j] + rec(i+1, j); v > best {
				best = v
			}
		}
		return best
	}
	return rec(0, 0) / float64(n)
}

func TestOrderAwareEvaluateMatchesBrute(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(211, 212))
	for trial := 0; trial < 8; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(3), 2, 0.6, 1)
		id := trajdb.TrajID(rng.IntN(f.db.NumTrajectories()))
		got, err := e.OrderAwareEvaluate(q, id)
		if err != nil {
			t.Fatal(err)
		}
		nq := mustNormalize(t, q, e)
		want := orderAwareBrute(e, nq, id)
		if math.Abs(got.Spatial-want) > 1e-9 {
			t.Fatalf("trial %d traj %d: ordered spatial %g, brute %g", trial, id, got.Spatial, want)
		}
	}
	if _, err := e.OrderAwareEvaluate(Query{Locations: f.randomQuery(rng, 1, 0, 0.5, 1).Locations}, -1); !errors.Is(err, ErrTrajRange) {
		t.Errorf("bad traj id: %v", err)
	}
}

func TestOrderAwareNeverExceedsUnordered(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(221, 222))
	for trial := 0; trial < 10; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(4), 2, 0.5, 1)
		id := trajdb.TrajID(rng.IntN(f.db.NumTrajectories()))
		ordered, err := e.OrderAwareEvaluate(q, id)
		if err != nil {
			t.Fatal(err)
		}
		unordered, err := e.Evaluate(q, id)
		if err != nil {
			t.Fatal(err)
		}
		if ordered.Spatial > unordered.Spatial+1e-9 {
			t.Fatalf("ordered spatial %g exceeds unordered %g", ordered.Spatial, unordered.Spatial)
		}
	}
}

func TestOrderAwareSearchIsExact(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(231, 232))
	for trial := 0; trial < 6; trial++ {
		q := f.randomQuery(rng, 1+rng.IntN(3), 2, 0.3+0.5*rng.Float64(), 3)
		got, _, err := e.OrderAwareSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		// Brute ground truth: order-aware score of every trajectory.
		want := make([]Result, 0, f.db.NumTrajectories())
		sssp := roadnet.NewSSSP(e.g)
		nq := mustNormalize(t, q, e)
		for id := 0; id < f.db.NumTrajectories(); id++ {
			want = append(want, e.orderAwareResult(sssp, nq, trajdb.TrajID(id)))
		}
		sortResults(want)
		sameScores(t, "orderaware", got, want[:len(got)])
	}
}

// TestOrderAwareReversedItinerary pins the semantics: reversing the
// itinerary changes the score when the trajectory visits the places in one
// direction only.
func TestOrderAwareReversedItinerary(t *testing.T) {
	e, f := testEngineDefault(t)
	// Find a trajectory with a decent length and use its endpoints as an
	// itinerary in travel order, then reversed.
	var id trajdb.TrajID = -1
	for i := 0; i < f.db.NumTrajectories(); i++ {
		if f.db.Traj(trajdb.TrajID(i)).Len() >= 10 {
			id = trajdb.TrajID(i)
			break
		}
	}
	if id < 0 {
		t.Skip("no long trajectory in fixture")
	}
	traj := f.db.Traj(id)
	first := traj.Samples[0].V
	last := traj.Samples[traj.Len()-1].V
	if first == last {
		t.Skip("trajectory is a loop")
	}
	fwd := Query{Locations: []roadnet.VertexID{first, last}, Lambda: 1, K: 1}
	rev := Query{Locations: []roadnet.VertexID{last, first}, Lambda: 1, K: 1}
	f1, err := e.OrderAwareEvaluate(fwd, id)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.OrderAwareEvaluate(rev, id)
	if err != nil {
		t.Fatal(err)
	}
	// Forward itinerary matches both endpoints exactly (kernel 1 each);
	// reversed must pay for order violation on at least one of them.
	if f1.Spatial <= r1.Spatial {
		t.Errorf("forward %g should beat reversed %g", f1.Spatial, r1.Spatial)
	}
	if math.Abs(f1.Spatial-1) > 1e-9 {
		t.Errorf("forward endpoints should score spatial 1, got %g", f1.Spatial)
	}
}
