package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"
)

// ctxVariant names one context-aware engine entry point for table tests.
type ctxVariant struct {
	name string
	run  func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error)
}

func ctxVariants() []ctxVariant {
	return []ctxVariant{
		{"SearchCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.SearchCtx(ctx, q)
		}},
		{"SearchThresholdCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.SearchThresholdCtx(ctx, q, 0.4)
		}},
		{"ExhaustiveSearchCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.ExhaustiveSearchCtx(ctx, q)
		}},
		{"ExhaustiveThresholdCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.ExhaustiveThresholdCtx(ctx, q, 0.4)
		}},
		{"TextFirstSearchCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.TextFirstSearchCtx(ctx, q, TextFirstOptions{})
		}},
		{"OrderAwareSearchCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.OrderAwareSearchCtx(ctx, q)
		}},
		{"SearchWindowedCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.SearchWindowedCtx(ctx, q, TimeWindow{From: 0, To: 24*3600 - 1})
		}},
		{"DiversifiedSearchCtx", func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.DiversifiedSearchCtx(ctx, q, DiversifyOptions{})
		}},
	}
}

// TestPreCancelledContext verifies every entry point observes an
// already-cancelled context before doing meaningful work: the error is
// context.Canceled and no results leak out.
func TestPreCancelledContext(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(71, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, v := range ctxVariants() {
		res, _, err := v.run(e, ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", v.name, err)
		}
		if res != nil {
			t.Errorf("%s: returned %d results on a cancelled context", v.name, len(res))
		}
	}
}

// TestExpiredDeadline verifies an already-expired deadline surfaces as
// context.DeadlineExceeded.
func TestExpiredDeadline(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(72, 0))
	q := f.randomQuery(rng, 2, 3, 0.5, 5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, v := range ctxVariants() {
		if _, _, err := v.run(e, ctx, q); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", v.name, err)
		}
	}
}

// TestBackgroundCtxMatchesLegacy verifies the ctx-free wrappers and the
// ctx variants with context.Background() return identical rankings — the
// cancellation plumbing must not change results.
func TestBackgroundCtxMatchesLegacy(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(73, 0))
	for i := 0; i < 5; i++ {
		q := f.randomQuery(rng, 3, 4, 0.5, 8)
		legacy, _, err := e.Search(q)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		withCtx, _, err := e.SearchCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("SearchCtx: %v", err)
		}
		sameScores(t, "SearchCtx vs Search", withCtx, legacy)
	}
}

// TestMidSearchCancellation cancels a context while a search is running
// and verifies the search returns promptly with ctx.Err() and partial
// stats rather than running to completion.
func TestMidSearchCancellation(t *testing.T) {
	f := testFixture(t)
	// A latency-injecting store slows every Keywords call so the search is
	// guaranteed to still be inside its loops when the cancel fires.
	slow := NewFaultStore(f.db, FaultConfig{Latency: 200 * time.Microsecond})
	e, err := NewEngine(slow, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(74, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := e.ExhaustiveSearchCtx(ctx, q)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled search returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search did not observe cancellation within 5s")
	}
}

// TestBatchCancellation cancels a running batch and verifies (a) the call
// returns promptly with ctx.Err(), (b) every entry carries an error or a
// finished result, and (c) no worker goroutines outlive the call.
func TestBatchCancellation(t *testing.T) {
	f := testFixture(t)
	slow := NewFaultStore(f.db, FaultConfig{Latency: 100 * time.Microsecond})
	e, err := NewEngine(slow, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(75, 0))
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 3, 0.5, 5)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out, _, err := e.SearchBatch(ctx, queries, BatchOptions{Workers: 4, Algorithm: AlgoExhaustive})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled batch took %s to return", elapsed)
	}
	var cancelled int
	for i, o := range out {
		if o.Err == nil && o.Results == nil {
			t.Errorf("entry %d: neither error nor results after cancellation", i)
		}
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no batch entry recorded context.Canceled; cancel fired too late to test anything")
	}

	// The worker pool must be fully drained: goroutine count returns to
	// (roughly) the pre-call level once the runtime settles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before batch, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationBoundsWork verifies a pre-cancelled context keeps the
// expansion search from settling more than one poll interval of work.
func TestCancellationBoundsWork(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(76, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := e.SearchCtx(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.SettledVertices > cancelPollEvery {
		t.Errorf("cancelled search settled %d vertices, want ≤ %d", stats.SettledVertices, cancelPollEvery)
	}
}
