package core

import (
	"math"
	"testing"

	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// disconnectedWorld builds a two-island graph with trajectories on both
// islands — the regime where expanders exhaust their component, distances
// to the other island are +Inf, and the engine must fall back to textual
// competition for the unreachable trajectories.
func disconnectedWorld(t *testing.T) (*trajdb.Store, *textual.Vocab) {
	t.Helper()
	var b roadnet.Builder
	// Island A: vertices 0..3 in a line. Island B: vertices 4..7.
	for i := 0; i < 8; i++ {
		b.AddVertex(geo.Point{X: float64(i % 4), Y: float64(i / 4 * 10)})
	}
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(roadnet.VertexID(i), roadnet.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(roadnet.VertexID(i+4), roadnet.VertexID(i+5), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("test graph should be disconnected")
	}
	vocab := textual.NewVocab()
	sb := trajdb.NewBuilder(g, vocab)
	mustAdd := func(samples []trajdb.Sample, kws []string) trajdb.TrajID {
		id, err := sb.AddWithKeywords(samples, kws)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mustAdd([]trajdb.Sample{{V: 0, T: 100}, {V: 1, T: 200}}, []string{"food", "market"}) // island A
	mustAdd([]trajdb.Sample{{V: 2, T: 300}, {V: 3, T: 400}}, []string{"art"})            // island A
	mustAdd([]trajdb.Sample{{V: 4, T: 500}, {V: 5, T: 600}}, []string{"food", "market"}) // island B, perfect text
	mustAdd([]trajdb.Sample{{V: 6, T: 700}}, []string{"river"})                          // island B
	return sb.Freeze(), vocab
}

func TestDisconnectedComponentsMatchExhaustive(t *testing.T) {
	db, vocab := disconnectedWorld(t)
	e, err := NewEngine(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Locations: []roadnet.VertexID{0}, Keywords: vocab.InternAll([]string{"food", "market"}), Lambda: 0.5, K: 4},
		{Locations: []roadnet.VertexID{0, 5}, Keywords: vocab.InternAll([]string{"food"}), Lambda: 0.3, K: 4},
		{Locations: []roadnet.VertexID{7}, Lambda: 1, K: 4},
		{Locations: []roadnet.VertexID{1, 2}, Keywords: vocab.InternAll([]string{"art"}), Lambda: 0.8, K: 2},
	}
	for i, q := range queries {
		want, _, err := e.ExhaustiveSearch(q)
		if err != nil {
			t.Fatalf("query %d: exhaustive: %v", i, err)
		}
		got, _, err := e.Search(q)
		if err != nil {
			t.Fatalf("query %d: expansion: %v", i, err)
		}
		sameScores(t, "disconnected", got, want)
	}
	// A trajectory on the other island from a single query location has
	// spatial similarity exactly 0 but still competes on text.
	res, _, err := e.Search(Query{
		Locations: []roadnet.VertexID{0},
		Keywords:  vocab.InternAll([]string{"food", "market"}),
		Lambda:    0.5,
		K:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var islandB *Result
	for i := range res {
		if res[i].Traj == 2 {
			islandB = &res[i]
		}
	}
	if islandB == nil {
		t.Fatal("island-B perfect-text trajectory missing from results")
	}
	if islandB.Spatial != 0 || islandB.Textual != 1 {
		t.Errorf("island-B decomposition = (%g, %g), want (0, 1)", islandB.Spatial, islandB.Textual)
	}
	if !math.IsInf(islandB.Dists[0], 1) {
		t.Errorf("island-B distance = %g, want +Inf", islandB.Dists[0])
	}
}

func TestMaxQueryLocationsBoundary(t *testing.T) {
	e, f := testEngineDefault(t)
	locs := make([]roadnet.VertexID, MaxQueryLocations)
	for i := range locs {
		locs[i] = roadnet.VertexID(i % f.g.NumVertices())
	}
	q := Query{Locations: locs, Lambda: 0.7, K: 2}
	want, _, err := e.ExhaustiveSearch(q)
	if err != nil {
		t.Fatalf("64-location exhaustive: %v", err)
	}
	got, _, err := e.Search(q)
	if err != nil {
		t.Fatalf("64-location expansion: %v", err)
	}
	sameScores(t, "64 locations", got, want)
}
