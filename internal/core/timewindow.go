package core

import (
	"context"
	"errors"
	"fmt"

	"uots/internal/trajdb"
)

// TimeWindow is an optional hard departure-time filter (an extension
// beyond the paper's spatial+textual core, predating the temporal
// similarity of the authors' follow-up work): only trajectories departing
// inside the window qualify. From and To are seconds of day; a window with
// To < From wraps midnight (e.g. 22:00–02:00).
type TimeWindow struct {
	From, To float64
}

// ErrBadWindow is returned for windows outside the 24-hour domain.
var ErrBadWindow = errors.New("core: time window bounds must be in [0, 86400)")

// Validate checks the window bounds.
func (w TimeWindow) Validate() error {
	if w.From < 0 || w.From >= trajdb.SecondsPerDay || w.To < 0 || w.To >= trajdb.SecondsPerDay {
		return fmt.Errorf("%w: [%g, %g]", ErrBadWindow, w.From, w.To)
	}
	return nil
}

// Contains reports whether the instant t (seconds of day) falls inside
// the window, handling midnight wrap.
func (w TimeWindow) Contains(t float64) bool {
	if w.From <= w.To {
		return t >= w.From && t <= w.To
	}
	return t >= w.From || t <= w.To
}

// SearchWindowed answers a top-k query restricted to trajectories whose
// departure time falls inside window. The filter is applied before
// scoring, so the k results are the best departures inside the window, not
// a post-filtered global top-k.
//
//uots:allow ctxflow -- compat wrapper: the context-free API has no caller context to thread
func (e *Engine) SearchWindowed(q Query, window TimeWindow) ([]Result, SearchStats, error) {
	return e.SearchWindowedCtx(context.Background(), q, window)
}

// SearchWindowedCtx is SearchWindowed with cancellation (see SearchCtx).
func (e *Engine) SearchWindowedCtx(ctx context.Context, q Query, window TimeWindow) (results []Result, stats SearchStats, err error) {
	defer recoverStoreFault(&results, &err)
	if err := window.Validate(); err != nil {
		return nil, SearchStats{}, err
	}
	return e.searchFiltered(ctx, q, func(id trajdb.TrajID) bool {
		return window.Contains(e.db.Traj(id).Start())
	})
}

// searchFiltered runs the expansion search over the subset of trajectories
// accepted by keep. The filter is pushed into every access path: filtered
// trajectories never become candidates, never enter the textual bound, and
// never trigger probes. Callers hold the store-fault guard: keep typically
// touches the store's record path.
func (e *Engine) searchFiltered(ctx context.Context, q Query, keep func(trajdb.TrajID) bool) ([]Result, SearchStats, error) {
	elapsed := stopwatch()
	q, err := q.normalize(e.g)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if q.Lambda == 0 {
		res, stats, err := e.textOnlyTopK(ctx, q, keep)
		stats.Elapsed = elapsed()
		if err != nil {
			return nil, stats, err
		}
		return res, stats, nil
	}
	st := newExpansionState(ctx, e, q, 0, true)
	st.keep = keep
	st.dropFilteredText()
	if err := st.run(); err != nil {
		st.stats.Elapsed = elapsed()
		return nil, st.stats, err
	}
	results := st.topk.Results()
	st.stats.Elapsed = elapsed()
	return results, st.stats, nil
}

// dropFilteredText removes filtered trajectories from the textual bound
// structures so they cannot block termination or waste probes.
func (st *expansionState) dropFilteredText() {
	if st.keep == nil {
		return
	}
	st.textHeap.Reset()
	for id := range st.textScores {
		if !st.keep(id) {
			delete(st.textScores, id)
			continue
		}
		st.textHeap.Push(st.textScores[id], id)
	}
}
