package shard

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/rpc"
	"uots/internal/trajdb"
)

// gateStore parks the first TrajsAtVertex call on gate, signalling
// parked, so a test can hold a query mid-scatter deterministically.
type gateStore struct {
	core.TrajStore
	once   sync.Once
	parked chan struct{}
	gate   chan struct{}
}

func (s *gateStore) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID {
	s.once.Do(func() {
		close(s.parked)
		<-s.gate
	})
	return s.TrajStore.TrajsAtVertex(v)
}

// TestEngineCloseIdempotent: repeated and concurrent Close calls are
// all safe, and queries after any of them fail with ErrClosed.
func TestEngineCloseIdempotent(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(101, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)

	eng, err := NewEngine(f.db, core.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Close()
		}()
	}
	wg.Wait()
	eng.Close() // and once more, sequentially
	if _, _, err := eng.SearchCtx(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchCtx after Close: err = %v, want ErrClosed", err)
	}
}

// TestEngineCloseDuringQuery: Close racing an in-flight query waits for
// it to drain; the query either completes normally or fails ErrClosed,
// and later queries always fail ErrClosed.
func TestEngineCloseDuringQuery(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(103, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	gs := &gateStore{parked: make(chan struct{}), gate: make(chan struct{})}
	eng, err := NewEngine(f.db, core.Options{}, Config{
		Shards: 2,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			if gs.TrajStore == nil {
				gs.TrajStore = s
				return gs
			}
			return s
		},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	type out struct {
		res []core.Result
		err error
	}
	qdone := make(chan out, 1)
	go func() {
		res, _, err := eng.SearchCtx(context.Background(), q)
		qdone <- out{res, err}
	}()
	<-gs.parked
	cdone := make(chan struct{})
	go func() {
		eng.Close()
		close(cdone)
	}()
	// Close must wait for the parked query, not tear the pool down under
	// it: give it a moment, then release the query.
	select {
	case <-cdone:
		t.Fatalf("Close returned while a query was still parked in a shard search")
	case <-time.After(20 * time.Millisecond):
	}
	close(gs.gate)
	o := <-qdone
	<-cdone
	if o.err != nil && !errors.Is(o.err, ErrClosed) {
		t.Fatalf("query racing Close: err = %v, want nil or ErrClosed", o.err)
	}
	if o.err == nil && len(o.res) == 0 {
		t.Fatalf("query racing Close completed with no results")
	}
	if _, _, err := eng.SearchCtx(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchCtx after Close: err = %v, want ErrClosed", err)
	}
}

// TestRemoteExecutorCloseIdempotent mirrors the Engine contract for the
// network executor.
func TestRemoteExecutorCloseIdempotent(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(107, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)
	cl := startCluster(t, f, 2, 1, RemoteConfig{}, nil, nil, nil)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.re.Close()
		}()
	}
	wg.Wait()
	cl.re.Close()
	if _, _, err := cl.re.SearchCtx(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchCtx after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := cl.re.SearchBatch(context.Background(), []core.Query{q}, core.BatchOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchBatch after Close: err = %v, want ErrClosed", err)
	}
}

// TestRemoteExecutorCloseDuringQuery: Close aborts in-flight scatters
// (parked on a stalled replica) and the query reports ErrClosed — not a
// raw cancellation, and never a partial answer.
func TestRemoteExecutorCloseDuringQuery(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(109, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	var started atomic.Int64
	cl := startCluster(t, f, 2, 1, RemoteConfig{}, nil, nil,
		func(p, r int, h http.Handler) http.Handler {
			if p != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if req.URL.Path != rpc.PathSearch {
					h.ServeHTTP(w, req)
					return
				}
				io.Copy(io.Discard, req.Body) // see TestRemoteMidQueryCancellation
				started.Add(1)
				<-req.Context().Done()
			})
		})

	type out struct {
		res []core.Result
		err error
	}
	qdone := make(chan out, 1)
	go func() {
		res, _, err := cl.re.SearchCtx(context.Background(), q)
		qdone <- out{res, err}
	}()
	waitUntil(t, "replica to receive the scattered search", func() bool { return started.Load() > 0 })
	cl.re.Close()
	o := <-qdone
	if !errors.Is(o.err, ErrClosed) {
		t.Fatalf("query racing Close: err = %v, want ErrClosed", o.err)
	}
	if o.res != nil {
		t.Fatalf("closed query returned %d results, want none", len(o.res))
	}
}
