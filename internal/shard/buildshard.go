package shard

import (
	"fmt"

	"uots/internal/core"
	"uots/internal/index"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// buildSubStore rebuilds one partition's trajectories as a standalone
// frozen store over the shared graph. Samples and keywords are copied
// because a Traj result is only valid until the next store call;
// keywords are pre-interned TermSets, so no vocabulary is needed.
func buildSubStore(db core.TrajStore, ids []trajdb.TrajID, shardIdx int) (core.TrajStore, error) {
	b := trajdb.NewBuilder(db.Graph(), nil)
	for _, gid := range ids {
		samples := append([]trajdb.Sample(nil), db.Traj(gid).Samples...)
		keywords := append(textual.TermSet(nil), db.Keywords(gid)...)
		if _, err := b.Add(samples, keywords); err != nil {
			return nil, fmt.Errorf("shard: rebuilding trajectory %d for shard %d: %w", gid, shardIdx, err)
		}
	}
	return b.Freeze(), nil
}

// subOptions derives one shard engine's options from the global ones. A
// global TrajBounds index is keyed by global dense IDs, so each shard
// rebuilds its own over the shard-local store; the landmark distance
// tables depend only on the graph and are shared, making the rebuild
// O(shard trajectories · K). The wire protocol is untouched: bounds are
// consulted locally per shard, and only the SharedBound scalar — already
// wire-safe by the strict-< prune contract — crosses shard boundaries.
func subOptions(opts core.Options, sub core.TrajStore) core.Options {
	if opts.Index != nil {
		opts.Index = index.NewTrajBounds(sub, opts.Index.Landmarks())
	}
	return opts
}

// BuildShardEngine partitions db with part into shards pieces and builds
// the core.Engine serving piece index, plus the shard-local → global
// trajectory ID mapping its results need. This is the shard-server
// half of the distributed topology contract: a shard server and the
// router both derive the partition from the same (dataset, partitioner,
// shard count) inputs, so piece index here holds exactly the
// trajectories the router's scatter expects of partition index. A nil
// partitioner means HashPartitioner, matching Config.Partitioner.
//
// An empty partition returns (nil, nil, nil): serve it with a nil-engine
// rpc.ShardServer, which answers every search with zero results.
// Corpus-dependent text similarities are rejected with ErrShardedTextSim
// for the same reason NewExecutor rejects them: shard-local IDF differs
// from global IDF, so shard-local scores would not be the monolithic
// scores.
func BuildShardEngine(db core.TrajStore, opts core.Options, part Partitioner, shards, index int) (eng *core.Engine, globals []trajdb.TrajID, err error) {
	defer recoverBuildFault(&err)
	if shards <= 0 || index < 0 || index >= shards {
		return nil, nil, fmt.Errorf("%w: shard %d of %d", ErrBadShards, index, shards)
	}
	if opts.TextSim != core.TextJaccard {
		return nil, nil, fmt.Errorf("%w: got %v", ErrShardedTextSim, opts.TextSim)
	}
	if part == nil {
		part = HashPartitioner{}
	}
	assignment := part.Partition(db, shards)
	if len(assignment) != shards {
		return nil, nil, fmt.Errorf("shard: partitioner %q returned %d shards, want %d", part, len(assignment), shards)
	}
	ids := assignment[index]
	if len(ids) == 0 {
		return nil, nil, nil
	}
	sub, err := buildSubStore(db, ids, index)
	if err != nil {
		return nil, nil, err
	}
	eng, err = core.NewEngine(sub, subOptions(opts, sub))
	if err != nil {
		return nil, nil, fmt.Errorf("shard: engine for shard %d: %w", index, err)
	}
	return eng, append([]trajdb.TrajID(nil), ids...), nil
}
