package shard

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
)

// neverTimer arms hedges without ever firing them: the pick-cursor
// movement matches a production hedged call exactly, but the event
// sequence stays free of wall-clock races.
func neverTimer(time.Duration) (<-chan time.Time, func() bool) {
	return make(chan time.Time), func() bool { return true }
}

// tracedGroup is the deterministic-trace config: seeded backoff and an
// armed (but never firing) hedge timer. With the hedge armed, every
// call advances the round-robin cursor by a fixed two picks, so
// replica attribution repeats exactly between identical runs.
func tracedGroup() func(int) rpc.GroupConfig {
	return func(int) rpc.GroupConfig {
		return rpc.GroupConfig{
			MaxAttempts: 3,
			Backoff:     rpc.BackoffConfig{Base: time.Nanosecond},
			Seed:        7,
			HedgeDelay:  time.Hour,
			Timer:       neverTimer,
		}
	}
}

// renderTrace flattens a merged trace into one comparable string,
// masking exactly the documented run-dependent values: the wall-clock
// Extra of rpc_attempt_ok / rpc_attempt_err and of the
// remote_partition bracket. Everything else — kinds, order, replica
// notes, partition ordinals, remote engine spans — must reproduce
// byte for byte.
func renderTrace(events []obs.SpanEvent) string {
	var b strings.Builder
	for _, ev := range events {
		extra := ev.Extra
		switch ev.Kind {
		case rpc.TraceAttemptOK, rpc.TraceAttemptErr, TracePartition:
			extra = -1
		}
		fmt.Fprintf(&b, "%d %s src=%d traj=%d v=%g x=%g n=%q\n",
			ev.Step, ev.Kind, ev.Source, ev.Traj, ev.Value, extra, ev.Note)
	}
	return b.String()
}

// checkRemoteTraceShape asserts the structural invariants of one merged
// cross-node trace: it opens with the scatter, closes with the merge,
// replays every partition exactly once per scatter in ascending
// partition order, and carries one remote child span per partition
// visit.
func checkRemoteTraceShape(t *testing.T, tag string, events []obs.SpanEvent, shards, scatters int) {
	t.Helper()
	if len(events) == 0 {
		t.Fatalf("%s: empty trace", tag)
	}
	if events[0].Kind != TraceScatter {
		t.Errorf("%s: first event %q, want %q", tag, events[0].Kind, TraceScatter)
	}
	if last := events[len(events)-1].Kind; last != TraceMerge {
		t.Errorf("%s: last event %q, want %q", tag, last, TraceMerge)
	}
	counts := map[string]int{}
	var open []float64 // partition bracket stack (depth ≤ 1)
	wantNext := 0
	for _, ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case TraceScatter:
			wantNext = 0
		case TracePartition:
			if len(open) != 0 {
				t.Fatalf("%s: nested %s bracket", tag, TracePartition)
			}
			if int(ev.Value) != wantNext {
				t.Errorf("%s: partition bracket %g, want %d (ascending order)", tag, ev.Value, wantNext)
			}
			open = append(open, ev.Value)
		case TracePartitionDone:
			if len(open) != 1 || open[0] != ev.Value {
				t.Fatalf("%s: unbalanced %s for partition %g", tag, TracePartitionDone, ev.Value)
			}
			open = open[:0]
			wantNext = int(ev.Value) + 1
		}
	}
	if len(open) != 0 {
		t.Errorf("%s: unclosed partition bracket", tag)
	}
	for kind, want := range map[string]int{
		TraceScatter:       scatters,
		TraceMerge:         scatters,
		TracePartition:     shards * scatters,
		TracePartitionDone: shards * scatters,
		rpc.TraceRemoteSpan: shards * scatters,
	} {
		if counts[kind] != want {
			t.Errorf("%s: %d %s events, want %d", tag, counts[kind], kind, want)
		}
	}
	if counts[rpc.TraceAttempt] < shards*scatters {
		t.Errorf("%s: %d %s events, want >= %d", tag, counts[rpc.TraceAttempt], rpc.TraceAttempt, shards*scatters)
	}
}

// TestRemoteTraceDeterministicMerge replays an identical traced query
// and batch twice against the same N×R cluster and requires the merged
// trace — client-side attempt ladder, partition brackets, and the
// shard servers' replayed engine spans — to reproduce byte for byte
// once the documented wall-clock Extras are masked. The bound exchange
// is disabled (its piggybacked thresholds depend on shard timing) and
// the batch runs one worker so the shard-side span is sequential.
func TestRemoteTraceDeterministicMerge(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(91, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	batch := []core.Query{f.randomQuery(rng, 2, 2, 0.5, 4), f.randomQuery(rng, 2, 3, 0.3, 6)}
	ctxBase := context.Background()

	for _, n := range []int{2, 4} {
		for _, r := range []int{1, 2} {
			t.Run(fmt.Sprintf("n=%d_r=%d", n, r), func(t *testing.T) {
				cl := startCluster(t, f, n, r,
					RemoteConfig{DisableSharedBound: true}, tracedGroup(), nil, nil)
				run := func(pass int) string {
					rec := obs.NewTraceRecorder(0)
					ctx := obs.ContextWithTracer(ctxBase, rec)
					ctx = obs.ContextWithTraceID(ctx, "det-merge")
					if _, _, err := cl.re.SearchCtx(ctx, q); err != nil {
						t.Fatalf("pass %d SearchCtx: %v", pass, err)
					}
					if _, _, err := cl.re.SearchBatch(ctx, batch, core.BatchOptions{Workers: 1}); err != nil {
						t.Fatalf("pass %d SearchBatch: %v", pass, err)
					}
					events := rec.Events()
					checkRemoteTraceShape(t, fmt.Sprintf("pass %d", pass), events, n, 2)
					return renderTrace(events)
				}
				a, b := run(1), run(2)
				if a != b {
					t.Errorf("merged trace not deterministic across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
				}
			})
		}
	}
}

// TestRemoteTraceConcurrentSampledQueries drives sampled queries
// through one RemoteExecutor from many goroutines at once — the
// race-detector workout for the per-partition trace buffers, the trace
// ID plumbing, and the shard servers' trace stores. Each query gets a
// private recorder, and each merged trace must still be well-formed in
// isolation.
func TestRemoteTraceConcurrentSampledQueries(t *testing.T) {
	const shards, workers = 2, 8
	f := testFixture(t)
	cl := startCluster(t, f, shards, 2, RemoteConfig{}, tracedGroup(), nil, nil)
	rng := rand.New(rand.NewPCG(17, 0))
	queries := make([]core.Query, workers)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 2, 0.5, 5)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := obs.NewTraceRecorder(0)
			ctx := obs.ContextWithTracer(context.Background(), rec)
			ctx = obs.ContextWithTraceID(ctx, fmt.Sprintf("conc-%d", w))
			if _, _, err := cl.re.SearchCtx(ctx, queries[w]); err != nil {
				t.Errorf("worker %d SearchCtx: %v", w, err)
				return
			}
			checkRemoteTraceShape(t, fmt.Sprintf("worker %d", w), rec.Events(), shards, 1)
		}(w)
	}
	wg.Wait()
}
