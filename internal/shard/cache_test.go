package shard

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4) // < cacheSubShards → one sub-shard, capacity 4
	if len(c.shards) != 1 {
		t.Fatalf("small cache has %d sub-shards, want 1", len(c.shards))
	}
	res := func(id int) []core.Result { return []core.Result{{Traj: trajdb.TrajID(id), Score: 1}} }
	for i := 0; i < 4; i++ {
		if ev := c.put(fmt.Sprintf("k%d", i), res(i)); ev != 0 {
			t.Fatalf("put %d evicted %d entries from a non-full cache", i, ev)
		}
	}
	// Refresh k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatalf("k0 missing before eviction")
	}
	if ev := c.put("k4", res(4)); ev != 1 {
		t.Fatalf("put into full cache evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("k1"); ok {
		t.Fatalf("k1 survived eviction; LRU order ignored")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if got := c.len(); got != 4 {
		t.Errorf("cache holds %d entries, want 4", got)
	}
}

func TestCacheReturnsCopies(t *testing.T) {
	c := newCache(2)
	c.put("k", []core.Result{{Traj: 7, Score: 0.5}})
	a, _ := c.get("k")
	a[0].Traj = 99
	b, _ := c.get("k")
	if b[0].Traj != 7 {
		t.Fatalf("mutating a hit leaked into the cache: traj = %d, want 7", b[0].Traj)
	}
}

// TestCacheDeepCopiesDists is the regression test for the Dists
// aliasing bug: get and put used to copy the result slice shallowly, so
// the per-result Dists backing arrays were shared between the cache and
// every caller — mutating a hit's Dists in place corrupted all later
// hits of the same key.
func TestCacheDeepCopiesDists(t *testing.T) {
	c := newCache(2)
	orig := []core.Result{{Traj: 7, Score: 0.5, Dists: []float64{1.5, 2.5}}}
	c.put("k", orig)

	// The caller's slice must be detached from the stored entry.
	orig[0].Dists[0] = -1
	a, _ := c.get("k")
	if a[0].Dists[0] != 1.5 {
		t.Fatalf("mutating the put slice leaked into the cache: dist = %v, want 1.5", a[0].Dists[0])
	}

	// And a hit's slice must be detached from both the cache and other hits.
	a[0].Dists[1] = -2
	b, _ := c.get("k")
	if b[0].Dists[1] != 2.5 {
		t.Fatalf("mutating a hit's Dists leaked into the cache: dist = %v, want 2.5", b[0].Dists[1])
	}
}

// TestCacheCapacityExact is the regression test for the ceil-split
// over-admission: newCache used to give every sub-shard ceil(total/n)
// slots, so a total=9 cache admitted 16 entries. The aggregate capacity
// must now equal the configured total exactly.
func TestCacheCapacityExact(t *testing.T) {
	for _, total := range []int{1, 7, 8, 9, 15, 17, 100} {
		c := newCache(total)
		sum := 0
		for i := range c.shards {
			if c.shards[i].cap < 1 {
				t.Errorf("total=%d: sub-shard %d has capacity %d", total, i, c.shards[i].cap)
			}
			sum += c.shards[i].cap
		}
		if sum != total {
			t.Errorf("total=%d: aggregate capacity %d, want exactly %d", total, sum, total)
		}
		// Overfill and confirm the LRU never holds more than total entries.
		for i := 0; i < 3*total; i++ {
			c.put(fmt.Sprintf("k%d", i), []core.Result{{Traj: trajdb.TrajID(i)}})
		}
		if got := c.len(); got > total {
			t.Errorf("total=%d: cache holds %d entries after overfill", total, got)
		}
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	q := core.Query{
		Locations: []roadnet.VertexID{3, 1},
		Keywords:  textual.TermSet{2, 5},
		Lambda:    0.5,
		K:         5,
	}
	base := cacheKey(cacheSearch, 0, q)
	if got := cacheKey(cacheSearch, 0, q); got != base {
		t.Fatalf("identical inputs produced different keys")
	}
	variants := map[string]string{
		"variant":    cacheKey(cacheOrderAware, 0, q),
		"generation": cacheKey(cacheSearch, 1, q),
		"lambda": cacheKey(cacheSearch, 0, core.Query{
			Locations: q.Locations, Keywords: q.Keywords, Lambda: 0.6, K: q.K}),
		"k": cacheKey(cacheSearch, 0, core.Query{
			Locations: q.Locations, Keywords: q.Keywords, Lambda: q.Lambda, K: 6}),
		"locations order": cacheKey(cacheSearch, 0, core.Query{
			Locations: []roadnet.VertexID{1, 3}, Keywords: q.Keywords, Lambda: q.Lambda, K: q.K}),
		"keywords": cacheKey(cacheSearch, 0, core.Query{
			Locations: q.Locations, Keywords: textual.TermSet{2, 6}, Lambda: q.Lambda, K: q.K}),
		"extras": cacheKey(cacheSearch, 0, q, 42),
	}
	for what, key := range variants {
		if key == base {
			t.Errorf("changing the %s did not change the cache key", what)
		}
	}
}

// countingStore counts every record access so tests can prove a cache
// hit does no store work.
type countingStore struct {
	core.TrajStore
	calls *atomic.Int64
}

func (s *countingStore) Traj(id trajdb.TrajID) *trajdb.Trajectory {
	s.calls.Add(1)
	return s.TrajStore.Traj(id)
}

func (s *countingStore) Keywords(id trajdb.TrajID) textual.TermSet {
	s.calls.Add(1)
	return s.TrajStore.Keywords(id)
}

func (s *countingStore) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID {
	s.calls.Add(1)
	return s.TrajStore.TrajsAtVertex(v)
}

func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name, "").Value()
}

func TestEngineCacheHitSkipsStore(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(67, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	reg := obs.NewRegistry()
	calls := &atomic.Int64{}
	eng, err := NewEngine(f.db, core.Options{}, Config{
		Shards:    3,
		CacheSize: 16,
		Metrics:   reg,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			return &countingStore{TrajStore: s, calls: calls}
		},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	first, _, err := eng.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("first SearchCtx: %v", err)
	}
	afterMiss := calls.Load()
	if afterMiss == 0 {
		t.Fatalf("first query did not touch the store")
	}
	if got := counterValue(t, reg, "uots_shard_cache_misses_total"); got != 1 {
		t.Fatalf("cache misses = %d, want 1", got)
	}

	second, stats, err := eng.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("second SearchCtx: %v", err)
	}
	if calls.Load() != afterMiss {
		t.Fatalf("cache hit touched the store: %d calls, want %d", calls.Load(), afterMiss)
	}
	if got := counterValue(t, reg, "uots_shard_cache_hits_total"); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if stats.VisitedTrajectories != 0 || stats.Candidates != 0 {
		t.Fatalf("cache hit reported work stats %+v, want zeros", stats)
	}
	sameResults(t, "cache hit", second, first)

	// A different variant over the same query must not share the entry.
	if _, _, err := eng.OrderAwareSearchCtx(context.Background(), q); err != nil {
		t.Fatalf("OrderAwareSearchCtx: %v", err)
	}
	if calls.Load() == afterMiss {
		t.Fatalf("order-aware query was served from the plain search's cache entry")
	}
}

func TestDynamicEngineGenerationInvalidatesCache(t *testing.T) {
	f := testFixture(t)
	ds := trajdb.NewDynamic(f.g, nil)
	for id := 0; id < 60; id++ {
		tr := f.db.Traj(trajdb.TrajID(id))
		samples := append([]trajdb.Sample(nil), tr.Samples...)
		if _, err := ds.Add(samples, tr.Keywords); err != nil {
			t.Fatalf("seed Add: %v", err)
		}
	}

	reg := obs.NewRegistry()
	eng, err := NewDynamicEngine(ds, core.Options{}, Config{Shards: 2, CacheSize: 16, Metrics: reg})
	if err != nil {
		t.Fatalf("NewDynamicEngine: %v", err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewPCG(71, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)

	if _, _, err := eng.SearchCtx(context.Background(), q); err != nil {
		t.Fatalf("first SearchCtx: %v", err)
	}
	if _, _, err := eng.SearchCtx(context.Background(), q); err != nil {
		t.Fatalf("second SearchCtx: %v", err)
	}
	if hits := counterValue(t, reg, "uots_shard_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits before mutation = %d, want 1", hits)
	}

	// Mutate: the generation bump must force a re-shard and a cache miss.
	tr := f.db.Traj(trajdb.TrajID(99))
	if _, err := ds.Add(append([]trajdb.Sample(nil), tr.Samples...), tr.Keywords); err != nil {
		t.Fatalf("mutating Add: %v", err)
	}
	if _, _, err := eng.SearchCtx(context.Background(), q); err != nil {
		t.Fatalf("post-mutation SearchCtx: %v", err)
	}
	if hits := counterValue(t, reg, "uots_shard_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits after mutation = %d, want still 1 (new generation must miss)", hits)
	}
	if misses := counterValue(t, reg, "uots_shard_cache_misses_total"); misses != 2 {
		t.Fatalf("cache misses after mutation = %d, want 2", misses)
	}

	// The rebuilt executor must agree with a monolithic engine over the
	// new snapshot.
	snap, _ := ds.Snapshot()
	mono, err := core.NewEngine(snap, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine(snapshot): %v", err)
	}
	want, _, err := mono.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("monolithic SearchCtx: %v", err)
	}
	got, _, err := eng.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("cached SearchCtx: %v", err)
	}
	sameResults(t, "post-mutation", got, want)
}
