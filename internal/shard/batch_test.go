package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// batchQueries draws n queries whose locations come from a small pool
// of vertices, so the batch has the cross-query source overlap the
// shared-expansion planner exploits.
func batchQueries(f fixture, rng *rand.Rand, n, poolSize int) []core.Query {
	pool := make([]roadnet.VertexID, poolSize)
	for i := range pool {
		pool[i] = roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	}
	queries := make([]core.Query, n)
	for i := range queries {
		q := f.randomQuery(rng, 2+rng.IntN(2), 3, 0.5, 5)
		for j := range q.Locations {
			q.Locations[j] = pool[rng.IntN(len(pool))]
		}
		queries[i] = q
	}
	return queries
}

// TestShardBatchMatchesMonolithic cross-validates the sharded batch
// against the monolithic engine: for every shard count, with and
// without shared expansion, every slot's results must match the
// monolithic single-query answer.
func TestShardBatchMatchesMonolithic(t *testing.T) {
	f := testFixture(t)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(101, 0))
	queries := batchQueries(f, rng, 10, 4)
	queries = append(queries,
		f.randomQuery(rng, 1, 0, 1.0, 8),  // pure spatial
		f.randomQuery(rng, 2, 4, 0.0, 5),  // pure textual (text-only fast path)
		f.randomQuery(rng, 4, 2, 0.7, 25), // k wider than any one shard's share
	)
	want := make([][]core.Result, len(queries))
	for i, q := range queries {
		r, _, err := mono.SearchCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("monolithic query %d: %v", i, err)
		}
		want[i] = r
	}

	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: n})
		if err != nil {
			t.Fatalf("NewExecutor(%d): %v", n, err)
		}
		for _, shared := range []bool{false, true} {
			out, stats, err := ex.SearchBatch(ctx, queries, core.BatchOptions{
				Workers: 2, SharedExpansion: shared})
			if err != nil {
				t.Fatalf("n=%d shared=%v SearchBatch: %v", n, shared, err)
			}
			if stats.Queries != len(queries) || stats.Failed != 0 {
				t.Fatalf("n=%d shared=%v stats %+v, want %d clean queries",
					n, shared, stats, len(queries))
			}
			for i, o := range out {
				if o.Err != nil {
					t.Fatalf("n=%d shared=%v entry %d: %v", n, shared, i, o.Err)
				}
				if o.Index != i {
					t.Errorf("n=%d shared=%v entry %d carries index %d", n, shared, i, o.Index)
				}
				sameResults(t, fmt.Sprintf("n=%d shared=%v q=%d", n, shared, i), o.Results, want[i])
			}
			if shared {
				// The hotspot pool guarantees shared frontiers did real work
				// on every shard: more settles served than performed.
				if stats.ServedSettles <= stats.FrontierSettles {
					t.Errorf("n=%d: no expansion saving recorded: served=%d frontier=%d",
						n, stats.ServedSettles, stats.FrontierSettles)
				}
			} else if stats.ServedSettles != 0 || stats.DistinctSources != 0 {
				t.Errorf("n=%d: independent batch reported planner counters: %+v", n, stats)
			}
		}
		ex.Close()
	}
}

// TestShardBatchPartialDegrade verifies per-query degradation: with one
// shard faulted under PartialDegrade, every batch slot is served from
// the healthy shards and matches the executor's own degraded
// single-query answer.
func TestShardBatchPartialDegrade(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(103, 0))
	queries := batchQueries(f, rng, 6, 3)

	ex, armed := buildFaulty(t, f, PartialDegrade, 1)
	defer ex.Close()
	armed.Store(true)

	out, stats, err := ex.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true})
	if err != nil {
		t.Fatalf("degraded SearchBatch: %v", err)
	}
	if stats.Failed != 0 {
		t.Fatalf("degraded batch reported %d failures, want 0", stats.Failed)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("entry %d: %v", i, o.Err)
		}
		want, _, err := ex.SearchCtx(context.Background(), queries[i])
		if err != nil {
			t.Fatalf("degraded single query %d: %v", i, err)
		}
		sameResults(t, fmt.Sprintf("degraded q=%d", i), o.Results, want)
	}
}

// TestShardBatchPartialFail verifies the strict policy: with one shard
// faulted under PartialFail, every slot that needed that shard fails
// with ErrStoreFault, and the failures are per-slot — the batch call
// itself succeeds.
func TestShardBatchPartialFail(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(104, 0))
	queries := batchQueries(f, rng, 6, 3)

	ex, armed := buildFaulty(t, f, PartialFail, 1)
	defer ex.Close()
	armed.Store(true)

	out, stats, err := ex.SearchBatch(context.Background(), queries, core.BatchOptions{})
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	failed := 0
	for i, o := range out {
		if o.Err == nil {
			continue
		}
		if !errors.Is(o.Err, core.ErrStoreFault) {
			t.Errorf("entry %d: err %v does not wrap ErrStoreFault", i, o.Err)
		}
		failed++
	}
	if failed == 0 {
		t.Fatal("no slot failed although a shard faults on every record access")
	}
	if stats.Failed != failed {
		t.Errorf("stats.Failed = %d, want %d", stats.Failed, failed)
	}
}

// TestShardBatchCancellation cancels a batch mid-flight (the first
// settle of any shard triggers it) and verifies the sharded batch
// matches the monolithic contract: the call returns ctx.Err() and every
// slot carries an error or a finished result.
func TestShardBatchCancellation(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(105, 0))
	queries := batchQueries(f, rng, 12, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	ex, err := NewExecutor(f.db, core.Options{}, Config{
		Shards: 3,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			return &cancelStore{TrajStore: s, once: &once, cancel: cancel}
		},
	})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()

	out, stats, err := ex.SearchBatch(ctx, queries, core.BatchOptions{SharedExpansion: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	cancelled := 0
	for i, o := range out {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
			continue
		}
		if o.Err != nil {
			t.Errorf("entry %d: unexpected error %v", i, o.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no slot recorded context.Canceled")
	}
	if stats.Failed < cancelled {
		t.Errorf("stats.Failed = %d, want ≥ %d", stats.Failed, cancelled)
	}
}

// TestShardBatchBadAlgorithm verifies the validation path rejects
// unknown algorithms before any scatter.
func TestShardBatchBadAlgorithm(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	rng := rand.New(rand.NewPCG(106, 0))
	queries := []core.Query{f.randomQuery(rng, 2, 2, 0.5, 5)}
	if _, _, err := ex.SearchBatch(context.Background(), queries,
		core.BatchOptions{Algorithm: core.Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted by Executor.SearchBatch")
	}

	eng, err := NewEngine(f.db, core.Options{}, Config{Shards: 2, CacheSize: 8})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	if _, _, err := eng.SearchBatch(context.Background(), queries,
		core.BatchOptions{Algorithm: core.Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted by Engine.SearchBatch")
	}
}

// TestEngineBatchCacheIntegration verifies the engine batch path shares
// cache entries with the single-query path: a batch fills the cache, a
// repeat batch is served entirely from it (no store work), and a batch
// after a single-query warmup hits that query's entry.
func TestEngineBatchCacheIntegration(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(107, 0))
	queries := batchQueries(f, rng, 6, 3)

	reg := obs.NewRegistry()
	calls := &atomic.Int64{}
	eng, err := NewEngine(f.db, core.Options{}, Config{
		Shards:    3,
		CacheSize: 32,
		Metrics:   reg,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			return &countingStore{TrajStore: s, calls: calls}
		},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	// Warm one entry through the single-query path.
	warm, _, err := eng.SearchCtx(context.Background(), queries[0])
	if err != nil {
		t.Fatalf("warmup SearchCtx: %v", err)
	}

	first, _, err := eng.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true})
	if err != nil {
		t.Fatalf("first SearchBatch: %v", err)
	}
	if hits := counterValue(t, reg, "uots_shard_cache_hits_total"); hits != 1 {
		t.Fatalf("batch after warmup recorded %d hits, want 1 (the warmed query)", hits)
	}
	sameResults(t, "warmed slot", first[0].Results, warm)

	afterFirst := calls.Load()
	second, stats, err := eng.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true})
	if err != nil {
		t.Fatalf("second SearchBatch: %v", err)
	}
	if calls.Load() != afterFirst {
		t.Fatalf("fully-cached batch touched the store: %d calls, want %d", calls.Load(), afterFirst)
	}
	if stats.Failed != 0 {
		t.Fatalf("cached batch reported %d failures", stats.Failed)
	}
	if stats.ServedSettles != 0 || stats.DistinctSources != 0 {
		t.Fatalf("fully-cached batch reported planner work: %+v", stats)
	}
	for i := range queries {
		sameResults(t, fmt.Sprintf("cached q=%d", i), second[i].Results, first[i].Results)
	}
}

// TestEngineBatchGenerationInvalidates verifies a dynamic-store
// mutation between batches invalidates every batch cache entry at once.
func TestEngineBatchGenerationInvalidates(t *testing.T) {
	f := testFixture(t)
	ds := trajdb.NewDynamic(f.g, nil)
	for id := 0; id < 80; id++ {
		tr := f.db.Traj(trajdb.TrajID(id))
		if _, err := ds.Add(append([]trajdb.Sample(nil), tr.Samples...), tr.Keywords); err != nil {
			t.Fatalf("seed Add: %v", err)
		}
	}
	reg := obs.NewRegistry()
	eng, err := NewDynamicEngine(ds, core.Options{}, Config{Shards: 2, CacheSize: 32, Metrics: reg})
	if err != nil {
		t.Fatalf("NewDynamicEngine: %v", err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewPCG(108, 0))
	queries := batchQueries(f, rng, 4, 2)
	if _, _, err := eng.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true}); err != nil {
		t.Fatalf("first SearchBatch: %v", err)
	}
	if _, _, err := eng.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true}); err != nil {
		t.Fatalf("second SearchBatch: %v", err)
	}
	hitsBefore := counterValue(t, reg, "uots_shard_cache_hits_total")
	if hitsBefore == 0 {
		t.Fatal("repeat batch recorded no cache hits")
	}

	tr := f.db.Traj(trajdb.TrajID(99))
	if _, err := ds.Add(append([]trajdb.Sample(nil), tr.Samples...), tr.Keywords); err != nil {
		t.Fatalf("mutating Add: %v", err)
	}
	out, _, err := eng.SearchBatch(context.Background(), queries, core.BatchOptions{SharedExpansion: true})
	if err != nil {
		t.Fatalf("post-mutation SearchBatch: %v", err)
	}
	if hits := counterValue(t, reg, "uots_shard_cache_hits_total"); hits != hitsBefore {
		t.Fatalf("post-mutation batch hit stale entries: %d hits, want still %d", hits, hitsBefore)
	}

	// The re-sharded answers must agree with a monolithic engine over the
	// new snapshot.
	snap, _ := ds.Snapshot()
	mono, err := core.NewEngine(snap, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine(snapshot): %v", err)
	}
	for i, q := range queries {
		want, _, err := mono.SearchCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("monolithic query %d: %v", i, err)
		}
		sameResults(t, fmt.Sprintf("post-mutation q=%d", i), out[i].Results, want)
	}
}
