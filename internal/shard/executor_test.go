package shard

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/obs"
)

func TestNewExecutorRejectsBadConfigs(t *testing.T) {
	f := testFixture(t)
	if _, err := NewExecutor(f.db, core.Options{}, Config{Shards: 0}); !errors.Is(err, ErrBadShards) {
		t.Errorf("Shards=0: err = %v, want ErrBadShards", err)
	}
	if _, err := NewExecutor(f.db, core.Options{}, Config{Shards: -3}); !errors.Is(err, ErrBadShards) {
		t.Errorf("Shards=-3: err = %v, want ErrBadShards", err)
	}
	if _, err := NewExecutor(f.db, core.Options{TextSim: core.TextCosineIDF}, Config{Shards: 2}); !errors.Is(err, ErrShardedTextSim) {
		t.Errorf("TextCosineIDF: err = %v, want ErrShardedTextSim", err)
	}
	if _, err := NewExecutor(nil, core.Options{}, Config{Shards: 2}); !errors.Is(err, core.ErrNilStore) {
		t.Errorf("nil store: err = %v, want core.ErrNilStore", err)
	}
}

func TestExecutorClampsShardCount(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 100000})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	if got := ex.NumShards(); got != f.db.NumTrajectories() {
		t.Fatalf("NumShards = %d, want clamp to %d trajectories", got, f.db.NumTrajectories())
	}
	// Even at one trajectory per shard the answers stay exact.
	rng := rand.New(rand.NewPCG(73, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want, _, err := mono.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("monolithic SearchCtx: %v", err)
	}
	got, _, err := ex.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("sharded SearchCtx: %v", err)
	}
	sameResults(t, "max shards", got, want)
}

func TestExecutorClosedRejectsQueries(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Close()
	rng := rand.New(rand.NewPCG(79, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 3)
	if _, _, err := ex.SearchCtx(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchCtx after Close: err = %v, want ErrClosed", err)
	}
}

func TestEngineClosedRejectsQueries(t *testing.T) {
	f := testFixture(t)
	eng, err := NewEngine(f.db, core.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	eng.Close()
	rng := rand.New(rand.NewPCG(79, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 3)
	if _, _, err := eng.SearchCtx(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Fatalf("Engine.SearchCtx after Close: err = %v, want ErrClosed", err)
	}
}

func TestExecutorQueryValidation(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 3})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(83, 0))
	good := f.randomQuery(rng, 2, 2, 0.5, 5)

	if _, _, err := ex.SearchCtx(ctx, core.Query{}); !errors.Is(err, core.ErrNoLocations) {
		t.Errorf("empty query: err = %v, want ErrNoLocations", err)
	}
	bad := good
	bad.Lambda = 1.5
	if _, _, err := ex.SearchCtx(ctx, bad); !errors.Is(err, core.ErrBadLambda) {
		t.Errorf("bad lambda: err = %v, want ErrBadLambda", err)
	}
	bad = good
	bad.K = -1
	if _, _, err := ex.SearchCtx(ctx, bad); !errors.Is(err, core.ErrBadK) {
		t.Errorf("bad k: err = %v, want ErrBadK", err)
	}
	if _, _, err := ex.DiversifiedSearchCtx(ctx, bad, core.DiversifyOptions{}); !errors.Is(err, core.ErrBadK) {
		t.Errorf("diversified bad k: err = %v, want ErrBadK", err)
	}
	if _, _, err := ex.DiversifiedSearchCtx(ctx, good, core.DiversifyOptions{Mu: 1.5}); !errors.Is(err, core.ErrBadDiversity) {
		t.Errorf("bad mu: err = %v, want ErrBadDiversity", err)
	}
	if _, _, err := ex.SearchThresholdCtx(ctx, good, 0); !errors.Is(err, core.ErrBadThreshold) {
		t.Errorf("bad theta: err = %v, want ErrBadThreshold", err)
	}
	if _, _, err := ex.SearchWindowedCtx(ctx, good, core.TimeWindow{From: -1}); !errors.Is(err, core.ErrBadWindow) {
		t.Errorf("bad window: err = %v, want ErrBadWindow", err)
	}
}

func TestScatterTraceAndMetrics(t *testing.T) {
	f := testFixture(t)
	reg := obs.NewRegistry()
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 4, Metrics: reg})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()

	rng := rand.New(rand.NewPCG(89, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	if _, _, err := ex.SearchCtx(ctx, q); err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}

	kinds := make(map[string]int)
	var doneOrder []float64
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
		if ev.Kind == TraceShardDone {
			doneOrder = append(doneOrder, ev.Value)
		}
	}
	if kinds[TraceScatter] != 1 {
		t.Errorf("%d %s events, want 1", kinds[TraceScatter], TraceScatter)
	}
	if kinds[TraceMerge] != 1 {
		t.Errorf("%d %s events, want 1", kinds[TraceMerge], TraceMerge)
	}
	if kinds[TraceShardDone] != ex.NumShards() {
		t.Errorf("%d %s events, want %d", kinds[TraceShardDone], TraceShardDone, ex.NumShards())
	}
	// shard_done events are emitted at gather time in index order, so a
	// traced query replays deterministically.
	for i, v := range doneOrder {
		if v != float64(i) {
			t.Errorf("shard_done order %v, want shard indices in ascending order", doneOrder)
			break
		}
	}

	if got := reg.CounterVec("uots_shard_queries_total", "", "variant").With("search").Value(); got != 1 {
		t.Errorf("uots_shard_queries_total{search} = %d, want 1", got)
	}
	var searches uint64
	for s := 0; s < ex.NumShards(); s++ {
		searches += reg.CounterVec("uots_shard_searches_total", "", "shard").With(strconv.Itoa(s)).Value()
	}
	if searches != uint64(ex.NumShards()) {
		t.Errorf("summed uots_shard_searches_total = %d, want %d", searches, ex.NumShards())
	}
}

// TestSharedBoundPrunesHappen exercises the cross-shard bound exchange:
// on queries whose answers concentrate score mass, at least one shard
// should record a prune it could not have made from its local threshold
// alone. This is statistical over a query batch — the exchange is
// timing-dependent — so the assertion is over the sum.
func TestSharedBoundPrunesHappen(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()

	rng := rand.New(rand.NewPCG(97, 0))
	total := 0
	for i := 0; i < 20; i++ {
		q := f.randomQuery(rng, 3, 3, 0.8, 2)
		_, stats, err := ex.SearchCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("SearchCtx: %v", err)
		}
		total += stats.SharedBoundPrunes
	}
	if total == 0 {
		t.Skip("no cross-shard prunes observed on this fixture/timing; bound exchange unverified here (covered by core unit tests)")
	}
}

func TestWorkerPoolConcurrentQueries(t *testing.T) {
	f := testFixture(t)
	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	rng := rand.New(rand.NewPCG(101, 0))
	queries := make([]core.Query, 8)
	want := make([][]core.Result, len(queries))
	for i := range queries {
		queries[i] = f.randomQuery(rng, 2, 3, 0.5, 5)
		r, _, err := mono.SearchCtx(context.Background(), queries[i])
		if err != nil {
			t.Fatalf("monolithic SearchCtx: %v", err)
		}
		want[i] = r
	}

	// More in-flight queries than workers: scatters from different
	// queries interleave on the two workers and must not deadlock or
	// cross results.
	var wg sync.WaitGroup
	got := make([][]core.Result, len(queries))
	errs := make([]error, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _, errs[i] = ex.SearchCtx(context.Background(), queries[i])
		}(i)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("concurrent SearchCtx %d: %v", i, errs[i])
		}
		sameResults(t, "concurrent query", got[i], want[i])
	}
}
