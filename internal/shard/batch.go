package shard

import (
	"context"
	"errors"
	"fmt"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/pqueue"
)

// Sharded batch execution. The whole batch scatters to every shard as
// one core.SearchBatch call, so a shared-expansion batch
// (core.BatchOptions.SharedExpansion) shares frontiers per shard — each
// shard runs one frontier per distinct source vertex over its own
// partition of the store. The gather then merges per query: each
// query's local top-k lists fold into the global top-k exactly as the
// single-query scatter does (selection lemma + globals remap), and each
// query's error resolves with the same deterministic precedence as
// Executor.resolve.
//
// The cross-shard SharedBound exchange stays OFF for batches, like the
// order-aware variant: the bound is valid only among participants of
// the SAME query with the same K, and a batch multiplexes many queries
// over one scatter context.

// shardBatchOut is one shard's batch outcome.
type shardBatchOut struct {
	out   []core.BatchResult
	stats core.BatchStats
	err   error // shard-level failure (cancellation, closed pool, frame fault)
	ran   bool
}

// SearchBatch mirrors core.Engine.SearchBatch over the shards: every
// shard runs the whole batch (with intra-shard expansion sharing when
// enabled), and results merge per query. Per-query errors surface in
// the per-slot Err like the monolithic batch; under PartialDegrade a
// query is served from its healthy shards when others hit store faults.
// The returned error is ctx.Err(), matching the monolithic contract.
func (ex *Executor) SearchBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats, error) {
	elapsed := obs.Stopwatch()
	switch opts.Algorithm {
	case core.AlgoExpansion, core.AlgoExhaustive, core.AlgoTextFirst:
	default:
		return nil, core.BatchStats{}, fmt.Errorf("core: unknown batch algorithm %d", int(opts.Algorithm))
	}
	sctx, trace := ex.begin(ctx, "batch", false)
	outs := ex.scatterBatch(sctx, queries, opts)

	var bstats core.BatchStats
	bstats.Queries = len(queries)
	out := make([]core.BatchResult, len(queries))
	considered := 0
	for i := range outs {
		o := &outs[i]
		if !o.ran {
			continue
		}
		bstats.DistinctSources += o.stats.DistinctSources
		bstats.SourceRefs += o.stats.SourceRefs
		bstats.FrontierSettles += o.stats.FrontierSettles
		bstats.ServedSettles += o.stats.ServedSettles
		if trace != nil {
			note := ""
			if o.err != nil {
				note = "err"
			}
			trace.Emit(obs.SpanEvent{Kind: TraceShardDone, Source: -1, Traj: -1,
				Value: float64(i), Extra: float64(len(o.out)), Note: note})
		}
	}
	for qi := range queries {
		out[qi] = ex.gatherQuery(ctx, outs, qi, queries[qi].K, &considered)
		if out[qi].Err != nil {
			bstats.Failed++
			continue
		}
		bstats.PerQuery.Add(out[qi].Stats)
	}
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceMerge, Source: -1, Traj: -1,
			Value: float64(len(queries) - bstats.Failed), Extra: float64(considered)})
	}
	bstats.WallClock = elapsed()
	return out, bstats, ctx.Err()
}

// scatterBatch fans the whole batch out to every non-empty shard on the
// worker pool and waits for all submitted tasks. Unlike scatter there
// is no fail-fast sibling cancellation: a per-query store fault is a
// per-query outcome (the monolithic batch keeps running too), and a
// shard-level error is only ever a cancellation the siblings already
// observe through the shared context.
func (ex *Executor) scatterBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) []shardBatchOut {
	out := make([]shardBatchOut, len(ex.shards))
	done := make(chan struct{}, len(ex.shards))
	submitted := 0
	for i := range ex.shards {
		h := &ex.shards[i]
		if h.engine == nil {
			continue
		}
		o := &out[i]
		ok := ex.pool.submit(ctx, func() {
			res, stats, err := h.engine.SearchBatch(ctx, queries, opts)
			o.out, o.stats, o.err, o.ran = res, stats, err, true
			h.counters.record(stats.PerQuery, err)
			done <- struct{}{}
		})
		if !ok {
			// The context died (or the pool closed) before a worker freed
			// up; the task never ran.
			err := ctx.Err()
			if err == nil {
				err = ErrClosed
			}
			o.err, o.ran = err, true
			continue
		}
		submitted++
	}
	for j := 0; j < submitted; j++ {
		<-done
	}
	return out
}

// gatherQuery resolves and merges one query of a gathered batch
// scatter, mirroring resolve's deterministic error precedence: the
// caller's own cancellation first, then the lowest-index shard error
// that is not a secondary cancellation, with PartialDegrade store
// faults dropped from the merge unless every shard faulted.
func (ex *Executor) gatherQuery(ctx context.Context, outs []shardBatchOut, qi, k int, considered *int) core.BatchResult {
	return gatherQueryOuts(ctx, outs, qi, k, ex.partial, ex.metrics, ex.remap, considered)
}

// gatherQueryOuts is gatherQuery's policy core, shared by the
// in-process Executor and the RemoteExecutor. remap rewrites shard i's
// local trajectory IDs to global ones in place; nil means the results
// are global already (the remote path — shard servers remap before
// answering).
func gatherQueryOuts(ctx context.Context, outs []shardBatchOut, qi, k int,
	partial PartialPolicy, m *metrics, remap func(i int, results []core.Result), considered *int,
) core.BatchResult {
	var stats core.SearchStats
	var firstErr, firstNonCancel, firstFault error
	var use []int
	degraded := 0
	for i := range outs {
		o := &outs[i]
		if !o.ran {
			continue
		}
		qerr := o.err
		if qerr == nil {
			r := &o.out[qi]
			stats.Add(r.Stats)
			if r.Stats.EarlyTerminated {
				stats.EarlyTerminated = true
			}
			qerr = r.Err
			if qerr == nil {
				use = append(use, i)
				continue
			}
		}
		if partial == PartialDegrade && errors.Is(qerr, core.ErrStoreFault) {
			if firstFault == nil {
				firstFault = qerr
			}
			degraded++
			continue
		}
		if firstErr == nil {
			firstErr = qerr
		}
		if firstNonCancel == nil && !errors.Is(qerr, context.Canceled) {
			firstNonCancel = qerr
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return core.BatchResult{Index: qi, Stats: stats, Err: cerr}
	}
	if firstNonCancel != nil {
		return core.BatchResult{Index: qi, Stats: stats, Err: firstNonCancel}
	}
	if firstErr != nil {
		return core.BatchResult{Index: qi, Stats: stats, Err: firstErr}
	}
	if degraded > 0 && len(use) == 0 {
		return core.BatchResult{Index: qi, Stats: stats, Err: fmt.Errorf("%w: %w", ErrAllShardsFailed, firstFault)}
	}
	m.recordDegraded(degraded)
	if k < 1 {
		k = 1 // Query.normalize's default
	}
	top := pqueue.NewTopK[core.Result](k)
	for _, si := range use {
		rs := outs[si].out[qi].Results
		if remap != nil {
			remap(si, rs)
		}
		for _, r := range rs {
			top.Offer(r.Score, int64(r.Traj), r)
			*considered++
		}
	}
	return core.BatchResult{Index: qi, Results: top.Results(), Stats: stats}
}
