package shard

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// fixture mirrors the core test world: a sparse city, a keyword
// universe, and a trajectory corpus — big enough that hash partitioning
// spreads trajectories over every shard count the tests use.
type fixture struct {
	g     *roadnet.Graph
	vocab *textual.SyntheticVocab
	db    *trajdb.Store
}

var (
	fixtureOnce sync.Once
	fixtureVal  fixture
)

func testFixture(t testing.TB) fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		g := roadnet.BRNLike(0.12, 7)
		vocab := textual.GenerateVocab(6, 40, 1.0, 11)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count:       400,
			MeanSamples: 20,
			Vocab:       vocab,
			Seed:        13,
		})
		if err != nil {
			panic("fixture: " + err.Error())
		}
		fixtureVal = fixture{g: g, vocab: vocab, db: db}
	})
	return fixtureVal
}

func (f fixture) randomQuery(rng *rand.Rand, nLoc, nKw int, lambda float64, k int) core.Query {
	locs := make([]roadnet.VertexID, nLoc)
	for i := range locs {
		locs[i] = roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	}
	regions := trajdb.NewRegionTopics(f.g.Bounds(), f.vocab.NumTopics())
	topic := regions.TopicOf(f.g.Point(locs[0]))
	kws := f.vocab.DrawQueryTerms(topic, nKw, 0.8, rng)
	return core.Query{Locations: locs, Keywords: kws, Lambda: lambda, K: k}
}

// Tolerances for cross-configuration comparisons. The ranking itself
// (trajectory identity and order) must be exact. Scores are compared
// with a tight absolute tolerance, and distances a looser one: the
// engine resolves a candidate distance either by forward expansion scan
// or by a reverse goal-directed probe, and the two sum the same shortest
// path in different association orders — so which shard a trajectory
// lands on can move a distance by an ULP. (The repo's exhaustive-vs-
// expansion cross-validation accepts the same wiggle.)
const (
	scoreTol = 1e-12
	distTol  = 1e-9
)

func closeEnough(a, b, tol float64) bool {
	if a == b {
		return true // covers ±Inf and exact matches
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol || diff <= tol*scale
}

// sameResults asserts got matches want: the same trajectories in the same
// order, with score decompositions and distances equal up to the
// tolerances above.
func sameResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Traj != w.Traj {
			t.Errorf("%s: rank %d trajectory %d, want %d", label, i, g.Traj, w.Traj)
			continue
		}
		if !closeEnough(g.Score, w.Score, scoreTol) ||
			!closeEnough(g.Spatial, w.Spatial, scoreTol) ||
			!closeEnough(g.Textual, w.Textual, scoreTol) {
			t.Errorf("%s: rank %d (traj %d) score (%v, %v, %v), want (%v, %v, %v)",
				label, i, g.Traj, g.Score, g.Spatial, g.Textual, w.Score, w.Spatial, w.Textual)
		}
		if len(g.Dists) != len(w.Dists) {
			t.Errorf("%s: rank %d (traj %d) has %d dists, want %d", label, i, g.Traj, len(g.Dists), len(w.Dists))
			continue
		}
		for j := range g.Dists {
			if !closeEnough(g.Dists[j], w.Dists[j], distTol) {
				t.Errorf("%s: rank %d (traj %d) dist[%d] = %v, want %v", label, i, g.Traj, j, g.Dists[j], w.Dists[j])
			}
		}
	}
}
