package shard

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// benchFixture is a trajectory-dense world: with many trajectories per
// vertex, candidate scanning and scoring — the work sharding divides —
// dominates the per-shard Dijkstra work sharding duplicates.
type benchWorld struct {
	db      *trajdb.Store
	queries []core.Query
}

var (
	benchOnce sync.Once
	benchVal  benchWorld
)

func benchFixture(b *testing.B) benchWorld {
	b.Helper()
	benchOnce.Do(func() {
		g := roadnet.BRNLike(0.12, 7)
		vocab := textual.GenerateVocab(6, 60, 1.0, 11)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count:       6000,
			MeanSamples: 24,
			Vocab:       vocab,
			Seed:        17,
		})
		if err != nil {
			panic("bench fixture: " + err.Error())
		}
		rng := rand.New(rand.NewPCG(23, 0))
		regions := trajdb.NewRegionTopics(g.Bounds(), vocab.NumTopics())
		queries := make([]core.Query, 16)
		for i := range queries {
			locs := make([]roadnet.VertexID, 3)
			for j := range locs {
				locs[j] = roadnet.VertexID(rng.IntN(g.NumVertices()))
			}
			topic := regions.TopicOf(g.Point(locs[0]))
			queries[i] = core.Query{
				Locations: locs,
				Keywords:  vocab.DrawQueryTerms(topic, 3, 0.8, rng),
				Lambda:    0.5,
				K:         10,
			}
		}
		benchVal = benchWorld{db: db, queries: queries}
	})
	return benchVal
}

// BenchmarkMonolithicSearch is the single-engine baseline for
// BenchmarkShardedSearch (same fixture, same query mix).
func BenchmarkMonolithicSearch(b *testing.B) {
	w := benchFixture(b)
	eng, err := core.NewEngine(w.db, core.Options{})
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, _, err := eng.SearchCtx(ctx, q); err != nil {
			b.Fatalf("SearchCtx: %v", err)
		}
	}
}

// BenchmarkShardedSearch measures scatter-gather wall-clock per query
// across shard counts. Run with -cpu 4 (or more) on a machine with that
// many physical cores to see the speedup over BenchmarkMonolithicSearch:
// the critical path drops to the slowest shard (~0.55× the monolithic
// latency at N=4 on this fixture) plus the merge. On a single-core
// machine the same benchmark shows a slowdown by construction — each
// shard re-expands its own Dijkstra frontier, so sharding trades total
// work for parallel latency (see the F10 experiment for the work
// decomposition).
func BenchmarkShardedSearch(b *testing.B) {
	w := benchFixture(b)
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			ex, err := NewExecutor(w.db, core.Options{}, Config{Shards: n})
			if err != nil {
				b.Fatalf("NewExecutor: %v", err)
			}
			defer ex.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := w.queries[i%len(w.queries)]
				if _, _, err := ex.SearchCtx(ctx, q); err != nil {
					b.Fatalf("SearchCtx: %v", err)
				}
			}
		})
	}
}

// BenchmarkShardedSearchNoBound isolates what the cross-shard bound
// exchange buys: same fixture and shard count with the exchange off.
func BenchmarkShardedSearchNoBound(b *testing.B) {
	w := benchFixture(b)
	ex, err := NewExecutor(w.db, core.Options{}, Config{Shards: 4, DisableSharedBound: true})
	if err != nil {
		b.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, _, err := ex.SearchCtx(ctx, q); err != nil {
			b.Fatalf("SearchCtx: %v", err)
		}
	}
}
