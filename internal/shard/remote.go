package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
)

// ErrRemoteDiversify rejects a remote diversified search without a
// local global engine: the MMR selection needs route overlaps over the
// full store, which only the router's own engine can compute.
var ErrRemoteDiversify = errors.New("shard: remote diversified search needs a local global engine (RemoteConfig.Global)")

// ErrRemoteBatchAlgo rejects remote batches with a non-expansion
// algorithm: the baselines carry in-process tuning (landmark indexes)
// that cannot cross the wire.
var ErrRemoteBatchAlgo = errors.New("shard: remote batches support AlgoExpansion only")

// RemoteConfig tunes a RemoteExecutor.
type RemoteConfig struct {
	// Global is the router's own monolithic engine over the full
	// (unpartitioned) dataset. Required for DiversifiedSearchCtx, whose
	// selection stage needs the whole store; every other variant works
	// without it. Under the topology contract the router loads the same
	// dataset as the shard servers, so it normally has one anyway.
	Global *core.Engine
	// Partial is the fault policy: an exhausted replica group surfaces
	// as a shard store fault, so PartialFail fails the query and
	// PartialDegrade serves the healthy partitions.
	Partial PartialPolicy
	// DisableSharedBound turns off the cross-shard k-th-bound piggyback
	// exchange (results are identical either way; see core.SharedBound).
	DisableSharedBound bool
	// Metrics receives the executor's uots_shard_* instruments (the
	// rpc groups carry their own uots_rpc_* metrics). nil disables.
	Metrics *obs.Registry
}

// RemoteExecutor runs every search variant as a scatter-gather over
// remote shard servers, one rpc.Group (replica set) per partition. It
// is the network twin of Executor: the same resolve precedence, the
// same deterministic merge, and byte-identical results to a monolithic
// core.Engine over the unpartitioned store — retries, hedges, and
// failover can reorder *work*, never *answers*. It satisfies the
// server.SearchBackend seam, so a router wires it through
// server.Config.Searcher exactly like a local shard.Engine.
//
// Close follows the shard.Engine contract: idempotent, safe against
// in-flight queries (it aborts their scatters and waits for them to
// drain), and queries issued after Close fail with ErrClosed. Close
// also closes the executor's rpc.Groups — the executor owns them.
type RemoteExecutor struct {
	groups   []*rpc.Group
	global   *core.Engine
	partial  PartialPolicy
	noBound  bool
	metrics  *metrics
	counters []shardCounters

	closeCtx    context.Context
	closeCancel context.CancelFunc
	closeOnce   sync.Once
	closed      atomic.Bool
	mu          sync.RWMutex // held shared by in-flight queries; Close drains it
}

// NewRemoteExecutor builds a remote executor over one replica group per
// partition, in partition order (groups[i] serves partition i of
// len(groups)). The executor takes ownership of the groups: its Close
// closes them.
//
//uots:allow ctxflow -- the close context is the executor's lifetime, minted at construction; queries thread their own caller contexts.
func NewRemoteExecutor(groups []*rpc.Group, cfg RemoteConfig) (*RemoteExecutor, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: got 0 partitions", ErrBadShards)
	}
	m := newMetrics(cfg.Metrics)
	re := &RemoteExecutor{
		groups:   groups,
		global:   cfg.Global,
		partial:  cfg.Partial,
		noBound:  cfg.DisableSharedBound,
		metrics:  m,
		counters: make([]shardCounters, len(groups)),
	}
	for i := range groups {
		re.counters[i] = m.forShard(i)
	}
	re.closeCtx, re.closeCancel = context.WithCancel(context.Background())
	return re, nil
}

// NumShards returns the partition count.
func (re *RemoteExecutor) NumShards() int { return len(re.groups) }

// Close aborts in-flight scatters, waits for them to drain, and closes
// the replica groups. Idempotent and safe to call concurrently with
// queries: a query racing Close fails with ErrClosed (unless its own
// context died first, which takes precedence).
func (re *RemoteExecutor) Close() {
	re.closeOnce.Do(func() {
		re.closed.Store(true)
		re.closeCancel()
		re.mu.Lock() // barrier: every in-flight query holds the read side
		re.mu.Unlock()
		for _, g := range re.groups {
			g.Close()
		}
	})
}

// beginQuery admits one query, returning its release func. The read
// lock is held for the query's whole lifetime so Close can drain.
//
//uots:allow lockscope -- deliberate lock handoff: the query-lifetime read lock is returned as the release func, and every caller releases it via defer; Close takes the write side as the drain barrier
func (re *RemoteExecutor) beginQuery() (func(), error) {
	if re.closed.Load() {
		return nil, ErrClosed
	}
	re.mu.RLock()
	if re.closed.Load() { // lost the race with Close
		re.mu.RUnlock()
		return nil, ErrClosed
	}
	return re.mu.RUnlock, nil
}

// begin records the query metric and emits the scatter trace event.
func (re *RemoteExecutor) begin(ctx context.Context, variant string) obs.Tracer {
	re.metrics.recordQuery(variant)
	trace := obs.TracerFromContext(ctx)
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceScatter, Source: -1, Traj: -1,
			Value: float64(len(re.groups)), Note: variant})
	}
	return trace
}

// newBound starts a scatter-wide k-th-score bound for same-K variants;
// the rpc groups piggyback it on requests and responses.
func (re *RemoteExecutor) newBound() *core.SharedBound {
	if re.noBound {
		return nil
	}
	return &core.SharedBound{}
}

// mapClosed rewrites the cancellation injected by Close into ErrClosed.
// The caller's own context error always wins (resolveOuts already
// guarantees that), so only a close-induced cancellation is rewritten.
func (re *RemoteExecutor) mapClosed(ctx context.Context, err error) error {
	if err != nil && ctx.Err() == nil && re.closed.Load() && errors.Is(err, context.Canceled) {
		return ErrClosed
	}
	return err
}

// partitionTraces buffers each partition's trace privately while the
// scatter is in flight. The partition goroutines run concurrently, so
// letting them emit into the caller's tracer directly would interleave
// events nondeterministically; instead each partition records into its
// own bounded buffer and merge replays the buffers into the parent in
// partition index order after the scatter joins, each inside a
// TracePartition / TracePartitionDone bracket carrying the partition's
// wall-clock. A nil *partitionTraces (untraced query) is a no-op.
type partitionTraces struct {
	parent  obs.Tracer
	bufs    []*obs.TraceRecorder
	elapsed []time.Duration
}

// newPartitionTraces returns the buffer set for a traced scatter, or
// nil when the caller's context carries no tracer.
func (re *RemoteExecutor) newPartitionTraces(ctx context.Context) *partitionTraces {
	parent := obs.TracerFromContext(ctx)
	if parent == nil {
		return nil
	}
	pt := &partitionTraces{
		parent:  parent,
		bufs:    make([]*obs.TraceRecorder, len(re.groups)),
		elapsed: make([]time.Duration, len(re.groups)),
	}
	for i := range pt.bufs {
		pt.bufs[i] = obs.NewTraceRecorder(0)
	}
	return pt
}

// wrap attaches partition i's private buffer to ctx and starts its
// wall-clock; the returned func stops the clock. The trace ID stays on
// the context, so the rpc group still stamps it on the wire.
func (pt *partitionTraces) wrap(ctx context.Context, i int) (context.Context, func()) {
	if pt == nil {
		return ctx, func() {}
	}
	sw := obs.Stopwatch()
	return obs.ContextWithTracer(ctx, pt.bufs[i]), func() { pt.elapsed[i] = sw() }
}

// merge replays the buffers into the parent trace in partition index
// order. Called after the scatter's WaitGroup joins, so the buffers are
// quiescent.
func (pt *partitionTraces) merge() {
	if pt == nil {
		return
	}
	for i, buf := range pt.bufs {
		pt.parent.Emit(obs.SpanEvent{Kind: TracePartition, Source: -1, Traj: -1,
			Value: float64(i), Extra: float64(pt.elapsed[i]) / float64(time.Millisecond)})
		for _, ev := range buf.Events() {
			pt.parent.Emit(ev)
		}
		pt.parent.Emit(obs.SpanEvent{Kind: TracePartitionDone, Source: -1, Traj: -1,
			Value: float64(i), Extra: float64(buf.Dropped())})
	}
}

// scatter fans fn out over every partition's replica group. Network
// calls park on the wire, so each partition gets a goroutine — no
// worker pool. Under PartialFail the first partition error cancels the
// siblings; Close cancels every in-flight scatter the same way.
func (re *RemoteExecutor) scatter(ctx context.Context, fn func(ctx context.Context, g *rpc.Group, i int) ([]core.Result, core.SearchStats, error)) []shardOut {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(re.closeCtx, cancel)
	defer stop()

	pt := re.newPartitionTraces(ctx)
	out := make([]shardOut, len(re.groups))
	var wg sync.WaitGroup
	for i := range re.groups {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, done := pt.wrap(sctx, i)
			res, stats, err := fn(pctx, re.groups[i], i)
			done()
			o := &out[i]
			o.results, o.stats, o.err, o.ran = res, stats, err, true
			re.counters[i].record(stats, err)
			if err != nil && re.partial == PartialFail {
				cancel()
			}
		}()
	}
	wg.Wait()
	pt.merge()
	return out
}

// searchScatter is the shared single-query path: scatter req to every
// partition (stamping the bound exchange), resolve, merge.
func (re *RemoteExecutor) searchScatter(ctx context.Context, variant string, req rpc.SearchRequest, bound *core.SharedBound, topK int) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	end, err := re.beginQuery()
	if err != nil {
		return nil, core.SearchStats{}, err
	}
	defer end()
	trace := re.begin(ctx, variant)
	out := re.scatter(ctx, func(ctx context.Context, g *rpc.Group, i int) ([]core.Result, core.SearchStats, error) {
		resp, err := g.Search(ctx, req, bound)
		return resp.Results, resp.Stats, err
	})
	use, stats, err := resolveOuts(ctx, out, re.partial, re.metrics, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, re.mapClosed(ctx, err)
	}
	var results []core.Result
	var considered int
	if topK >= 0 {
		results, considered = mergeTopKGlobal(out, use, topK)
	} else {
		results, considered = mergeAllGlobal(out, use)
	}
	finish(trace, &stats, len(results), considered, elapsed)
	return results, stats, nil
}

// SearchCtx mirrors Executor.SearchCtx over the remote shards.
func (re *RemoteExecutor) SearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	return re.searchScatter(ctx, "search",
		rpc.SearchRequest{Variant: rpc.VariantSearch, Query: q}, re.newBound(), q.K)
}

// SearchThresholdCtx mirrors Executor.SearchThresholdCtx: no bound
// exchange (the bar θ is global already), concatenating merge.
func (re *RemoteExecutor) SearchThresholdCtx(ctx context.Context, q core.Query, theta float64) ([]core.Result, core.SearchStats, error) {
	return re.searchScatter(ctx, "threshold",
		rpc.SearchRequest{Variant: rpc.VariantThreshold, Query: q, Theta: theta}, nil, -1)
}

// SearchWindowedCtx mirrors Executor.SearchWindowedCtx.
func (re *RemoteExecutor) SearchWindowedCtx(ctx context.Context, q core.Query, window core.TimeWindow) ([]core.Result, core.SearchStats, error) {
	return re.searchScatter(ctx, "windowed",
		rpc.SearchRequest{Variant: rpc.VariantWindowed, Query: q, Window: window}, re.newBound(), q.K)
}

// OrderAwareSearchCtx mirrors Executor.OrderAwareSearchCtx: the bound
// exchange stays off (shard-local K′ rounds break the same-K
// precondition) but the selection lemma keeps the merge exact.
func (re *RemoteExecutor) OrderAwareSearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	return re.searchScatter(ctx, "orderaware",
		rpc.SearchRequest{Variant: rpc.VariantOrderAware, Query: q}, nil, q.K)
}

// DiversifiedSearchCtx mirrors Executor.DiversifiedSearchCtx: the
// shards scatter the enlarged relevance pool as plain searches (same
// pool K everywhere, so the bound exchange applies) and the router's
// global engine runs the exact monolithic MMR selection over the merged
// pool.
func (re *RemoteExecutor) DiversifiedSearchCtx(ctx context.Context, q core.Query, opts core.DiversifyOptions) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	if re.global == nil {
		return nil, core.SearchStats{}, ErrRemoteDiversify
	}
	nopts, err := opts.Normalize()
	if err != nil {
		return nil, core.SearchStats{}, err
	}
	poolQ := q
	kk := q.K
	if kk >= 0 {
		if kk == 0 {
			kk = 1 // Query.normalize's default
		}
		poolQ.K = nopts.PoolK(kk)
	}
	// A negative K stays on poolQ so the shard servers reject it with the
	// same core.ErrBadK the monolithic engine returns.
	end, err := re.beginQuery()
	if err != nil {
		return nil, core.SearchStats{}, err
	}
	defer end()
	trace := re.begin(ctx, "diversified")
	bound := re.newBound()
	out := re.scatter(ctx, func(ctx context.Context, g *rpc.Group, i int) ([]core.Result, core.SearchStats, error) {
		resp, err := g.Search(ctx, rpc.SearchRequest{Variant: rpc.VariantSearch, Query: poolQ}, bound)
		return resp.Results, resp.Stats, err
	})
	use, stats, err := resolveOuts(ctx, out, re.partial, re.metrics, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, re.mapClosed(ctx, err)
	}
	pool, considered := mergeTopKGlobal(out, use, poolQ.K)
	picked, err := re.global.SelectDiverseCtx(ctx, pool, kk, nopts)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	finish(trace, &stats, len(picked), considered, elapsed)
	return picked, stats, nil
}

// scatterBatch fans the whole batch out to every partition's replica
// group, converting wire entries back into core.BatchResults (coded
// errors become the canonical sentinels again).
func (re *RemoteExecutor) scatterBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) []shardBatchOut {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(re.closeCtx, cancel)
	defer stop()

	pt := re.newPartitionTraces(ctx)
	out := make([]shardBatchOut, len(re.groups))
	var wg sync.WaitGroup
	for i := range re.groups {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, done := pt.wrap(sctx, i)
			defer done()
			o := &out[i]
			wopts := rpc.BatchOptions{Workers: opts.Workers, SharedExpansion: opts.SharedExpansion}
			resp, err := re.groups[i].Batch(pctx, rpc.BatchRequest{Queries: queries, Opts: wopts})
			if err != nil {
				o.err, o.ran = err, true
				re.counters[i].record(core.SearchStats{}, err)
				return
			}
			brs := make([]core.BatchResult, len(resp.Entries))
			for j, e := range resp.Entries {
				brs[j] = core.BatchResult{Index: e.Index, Results: e.Results, Stats: e.Stats, Err: e.Err()}
			}
			o.out, o.stats, o.ran = brs, resp.Stats, true
			re.counters[i].record(resp.Stats.PerQuery, nil)
		}()
	}
	wg.Wait()
	pt.merge()
	return out
}

// SearchBatch mirrors Executor.SearchBatch over the remote shards:
// every partition runs the whole batch (sharing expansion frontiers
// per shard when enabled) and results merge per query under the same
// deterministic precedence. The returned error is ctx.Err(), matching
// the monolithic contract.
func (re *RemoteExecutor) SearchBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats, error) {
	elapsed := obs.Stopwatch()
	if opts.Algorithm != core.AlgoExpansion {
		return nil, core.BatchStats{}, ErrRemoteBatchAlgo
	}
	end, err := re.beginQuery()
	if err != nil {
		return nil, core.BatchStats{}, err
	}
	defer end()
	trace := re.begin(ctx, "batch")
	outs := re.scatterBatch(ctx, queries, opts)

	var bstats core.BatchStats
	bstats.Queries = len(queries)
	out := make([]core.BatchResult, len(queries))
	considered := 0
	for i := range outs {
		o := &outs[i]
		if !o.ran {
			continue
		}
		bstats.DistinctSources += o.stats.DistinctSources
		bstats.SourceRefs += o.stats.SourceRefs
		bstats.FrontierSettles += o.stats.FrontierSettles
		bstats.ServedSettles += o.stats.ServedSettles
		if trace != nil {
			note := ""
			if o.err != nil {
				note = "err"
			}
			trace.Emit(obs.SpanEvent{Kind: TraceShardDone, Source: -1, Traj: -1,
				Value: float64(i), Extra: float64(len(o.out)), Note: note})
		}
	}
	for qi := range queries {
		out[qi] = gatherQueryOuts(ctx, outs, qi, queries[qi].K, re.partial, re.metrics, nil, &considered)
		if out[qi].Err != nil {
			out[qi].Err = re.mapClosed(ctx, out[qi].Err)
			bstats.Failed++
			continue
		}
		bstats.PerQuery.Add(out[qi].Stats)
	}
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceMerge, Source: -1, Traj: -1,
			Value: float64(len(queries) - bstats.Failed), Extra: float64(considered)})
	}
	bstats.WallClock = elapsed()
	return out, bstats, ctx.Err()
}
