package shard

import (
	"math"
	"sort"

	"uots/internal/core"
	"uots/internal/trajdb"
)

// Partitioner assigns every trajectory of a store to one of n shards.
//
// The contract every implementation must honour: the returned slice has
// exactly n entries, every trajectory ID in [0, NumTrajectories) appears
// in exactly one entry, each entry is sorted ascending, and the
// assignment is a pure function of the store contents (no randomness, no
// clock) — determinism of the whole sharded engine starts here. Entries
// may be empty.
//
// Ascending order inside each shard matters for correctness, not just
// tidiness: shard-local dense IDs are assigned in slice order, so an
// ascending slice makes local ID order agree with global ID order and
// the per-shard engines' smaller-ID-wins tie-breaks translate directly
// to the global merge.
type Partitioner interface {
	Partition(db core.TrajStore, n int) [][]trajdb.TrajID
	// String names the strategy for flags and metrics.
	String() string
}

// HashPartitioner scatters trajectories by a deterministic integer hash
// of their ID — near-uniform shard sizes and, because neighbouring
// trajectories land on different shards, near-uniform per-shard work for
// spatially clustered queries. The default.
type HashPartitioner struct{}

// Partition implements Partitioner.
func (HashPartitioner) Partition(db core.TrajStore, n int) [][]trajdb.TrajID {
	out := make([][]trajdb.TrajID, n)
	total := db.NumTrajectories()
	for s := range out {
		out[s] = make([]trajdb.TrajID, 0, total/n+1)
	}
	for id := 0; id < total; id++ {
		s := int(splitmix64(uint64(id)) % uint64(n))
		out[s] = append(out[s], trajdb.TrajID(id))
	}
	return out
}

// String implements Partitioner.
func (HashPartitioner) String() string { return "hash" }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed integer
// hash (Steele et al.), so consecutive IDs spread evenly across shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RegionPartitioner groups spatially coherent trajectories: it orders
// trajectories by (connected component of their first sample, spatial
// grid cell of their bounding-box centre) and cuts the order into n
// equal-size contiguous runs. Trajectories of the same region land on
// the same shard, so a local query concentrates its scans on few shards
// — the partition-local index layout of spatial-keyword systems — at the
// price of more skew than hashing under uniform load.
type RegionPartitioner struct {
	// GridCells is the number of cells per axis of the ordering grid
	// (default 32).
	GridCells int
}

// Partition implements Partitioner.
func (p RegionPartitioner) Partition(db core.TrajStore, n int) [][]trajdb.TrajID {
	cells := p.GridCells
	if cells <= 0 {
		cells = 32
	}
	g := db.Graph()
	labels, _ := g.ConnectedComponents()
	bounds := g.Bounds()
	spanX := bounds.Max.X - bounds.Min.X
	spanY := bounds.Max.Y - bounds.Min.Y

	total := db.NumTrajectories()
	keys := make([]uint64, total)
	order := make([]trajdb.TrajID, total)
	for id := 0; id < total; id++ {
		tid := trajdb.TrajID(id)
		comp := uint64(labels[db.Traj(tid).Samples[0].V])
		bb := db.BBox(tid)
		cx := gridCell((bb.Min.X+bb.Max.X)/2-bounds.Min.X, spanX, cells)
		cy := gridCell((bb.Min.Y+bb.Max.Y)/2-bounds.Min.Y, spanY, cells)
		// Row-major cell order within a component keeps cell neighbours
		// adjacent in the cut order; the trailing ID keeps the sort
		// deterministic under equal keys.
		keys[id] = comp<<32 | uint64(cy*cells+cx)
		order[id] = tid
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})

	out := make([][]trajdb.TrajID, n)
	per := int(math.Ceil(float64(total) / float64(n)))
	for s := range out {
		lo := s * per
		hi := lo + per
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		run := append([]trajdb.TrajID(nil), order[lo:hi]...)
		// Restore ascending global order inside the shard (see the
		// Partitioner contract).
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		out[s] = run
	}
	return out
}

// String implements Partitioner.
func (RegionPartitioner) String() string { return "region" }

// gridCell buckets an offset within [0, span] into [0, cells).
func gridCell(off, span float64, cells int) int {
	if span <= 0 {
		return 0
	}
	c := int(off / span * float64(cells))
	if c < 0 {
		c = 0
	}
	if c >= cells {
		c = cells - 1
	}
	return c
}

// PartitionerByName resolves a -partition flag value.
func PartitionerByName(name string) (Partitioner, bool) {
	switch name {
	case "", "hash":
		return HashPartitioner{}, true
	case "region":
		return RegionPartitioner{}, true
	default:
		return nil, false
	}
}
