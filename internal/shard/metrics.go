package shard

import (
	"strconv"

	"uots/internal/core"
	"uots/internal/obs"
)

// metrics are the executor's uots_shard_* instruments. A nil *metrics
// (no registry configured) disables everything; every method is
// nil-receiver-safe so call sites stay unconditional.
type metrics struct {
	queries  *obs.CounterVec // per variant
	degraded *obs.Counter
	searches *obs.CounterVec // per shard
	visited  *obs.CounterVec
	settled  *obs.CounterVec
	xprunes  *obs.CounterVec
	errors   *obs.CounterVec

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		queries: reg.CounterVec("uots_shard_queries_total",
			"Sharded scatter-gather queries executed, by search variant.", "variant"),
		degraded: reg.Counter("uots_shard_degraded_queries_total",
			"Queries served from a subset of shards after store faults (PartialDegrade)."),
		searches: reg.CounterVec("uots_shard_searches_total",
			"Per-shard search tasks executed.", "shard"),
		visited: reg.CounterVec("uots_shard_visited_trajectories_total",
			"Trajectories visited per shard across all scatters.", "shard"),
		settled: reg.CounterVec("uots_shard_settled_vertices_total",
			"Dijkstra-settled vertices per shard across all scatters.", "shard"),
		xprunes: reg.CounterVec("uots_shard_cross_prunes_total",
			"Candidates pruned by the cross-shard k-th-bound exchange, per shard.", "shard"),
		errors: reg.CounterVec("uots_shard_errors_total",
			"Per-shard search failures (store faults and cancellations).", "shard"),
		cacheHits: reg.Counter("uots_shard_cache_hits_total",
			"Sharded-engine result-cache hits (query served without touching the store)."),
		cacheMisses: reg.Counter("uots_shard_cache_misses_total",
			"Sharded-engine result-cache misses."),
		cacheEvictions: reg.Counter("uots_shard_cache_evictions_total",
			"Sharded-engine result-cache LRU evictions."),
	}
}

// shardCounters are one shard's pre-resolved counter series, looked up
// once at executor construction so the per-query path does no label
// resolution.
type shardCounters struct {
	searches *obs.Counter
	visited  *obs.Counter
	settled  *obs.Counter
	xprunes  *obs.Counter
	errors   *obs.Counter
}

func (m *metrics) forShard(i int) shardCounters {
	if m == nil {
		return shardCounters{}
	}
	label := strconv.Itoa(i)
	return shardCounters{
		searches: m.searches.With(label),
		visited:  m.visited.With(label),
		settled:  m.settled.With(label),
		xprunes:  m.xprunes.With(label),
		errors:   m.errors.With(label),
	}
}

func (c shardCounters) record(stats core.SearchStats, err error) {
	if c.searches == nil {
		return
	}
	c.searches.Inc()
	c.visited.AddInt(stats.VisitedTrajectories)
	c.settled.AddInt(stats.SettledVertices)
	c.xprunes.AddInt(stats.SharedBoundPrunes)
	if err != nil {
		c.errors.Inc()
	}
}

func (m *metrics) recordQuery(variant string) {
	if m == nil {
		return
	}
	m.queries.With(variant).Inc()
}

func (m *metrics) recordDegraded(n int) {
	if m == nil || n == 0 {
		return
	}
	m.degraded.Inc()
}
