package shard

import (
	"reflect"
	"testing"

	"uots/internal/trajdb"
)

// checkPartitionContract asserts the Partitioner contract: n entries,
// every trajectory exactly once, each entry ascending.
func checkPartitionContract(t *testing.T, label string, assignment [][]trajdb.TrajID, n, total int) {
	t.Helper()
	if len(assignment) != n {
		t.Fatalf("%s: %d shards, want %d", label, len(assignment), n)
	}
	seen := make(map[trajdb.TrajID]int, total)
	for s, ids := range assignment {
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				t.Errorf("%s: shard %d not strictly ascending at index %d (%d then %d)", label, s, i, ids[i-1], id)
			}
			if prev, dup := seen[id]; dup {
				t.Errorf("%s: trajectory %d assigned to shards %d and %d", label, id, prev, s)
			}
			seen[id] = s
		}
	}
	if len(seen) != total {
		t.Errorf("%s: %d trajectories assigned, want %d", label, len(seen), total)
	}
	for id := 0; id < total; id++ {
		if _, ok := seen[trajdb.TrajID(id)]; !ok {
			t.Errorf("%s: trajectory %d unassigned", label, id)
		}
	}
}

func TestPartitionerContract(t *testing.T) {
	f := testFixture(t)
	total := f.db.NumTrajectories()
	for _, part := range []Partitioner{HashPartitioner{}, RegionPartitioner{}, RegionPartitioner{GridCells: 4}} {
		for _, n := range []int{1, 2, 5, 16} {
			a := part.Partition(f.db, n)
			checkPartitionContract(t, part.String(), a, n, total)
			// Determinism: a second run must produce the identical layout.
			b := part.Partition(f.db, n)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v/n=%d: two runs produced different assignments", part, n)
			}
		}
	}
}

func TestHashPartitionerBalance(t *testing.T) {
	f := testFixture(t)
	total := f.db.NumTrajectories()
	const n = 4
	a := HashPartitioner{}.Partition(f.db, n)
	for s, ids := range a {
		// A uniform hash over 400 trajectories should put roughly 100 per
		// shard; a shard under a quarter of its fair share signals a
		// broken hash.
		if len(ids) < total/n/4 {
			t.Errorf("shard %d holds %d of %d trajectories — hash is badly skewed", s, len(ids), total)
		}
	}
}

func TestPartitionerByName(t *testing.T) {
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{"", "hash", true},
		{"hash", "hash", true},
		{"region", "region", true},
		{"bogus", "", false},
	}
	for _, c := range cases {
		p, ok := PartitionerByName(c.name)
		if ok != c.ok {
			t.Errorf("PartitionerByName(%q): ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && p.String() != c.want {
			t.Errorf("PartitionerByName(%q) = %v, want %s", c.name, p, c.want)
		}
	}
}
