package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/pqueue"
	"uots/internal/trajdb"
)

// Trace event kinds emitted by the sharded executor (alongside the
// per-shard engines' core.Trace* events, whose trajectory IDs are
// shard-local). Scatter-level events are emitted at gather time in shard
// index order, so a traced query replays deterministically even though
// the shards themselves finish in any order.
const (
	// TraceScatter opens a scatter: Value = shards scattered, Note = the
	// search variant.
	TraceScatter = "shard_scatter"
	// TraceShardDone records one shard's completion: Value = shard index,
	// Extra = local result count, Note = "err" when the shard failed.
	TraceShardDone = "shard_done"
	// TraceMerge closes a scatter: Value = merged result count, Extra =
	// candidates considered across shards.
	TraceMerge = "shard_merge"
	// TraceDegraded records a shard dropped from the merge under
	// PartialDegrade: Value = shard index.
	TraceDegraded = "shard_degraded"
	// TraceCacheHit records a query served from the result cache without
	// touching any store.
	TraceCacheHit = "cache_hit"
	// TracePartition opens one partition's remote replay (RemoteExecutor
	// only): the events until the matching TracePartitionDone — attempts,
	// retries, hedges, and the shard server's own span — were buffered by
	// partition Value's replica-group call and are replayed in partition
	// index order after the scatter joins. Extra = the partition's
	// wall-clock milliseconds, the per-hop latency attribution
	// (run-dependent; mask it to compare traces across runs).
	TracePartition = "remote_partition"
	// TracePartitionDone closes a partition replay: Value = partition
	// index, Extra = events the partition's buffer dropped over its cap.
	TracePartitionDone = "remote_partition_done"
)

// shardHandle is one partition: an engine over the shard-local store and
// the shard-local → global trajectory ID mapping (ascending, see the
// Partitioner contract). engine is nil for empty shards.
type shardHandle struct {
	engine   *core.Engine
	globals  []trajdb.TrajID
	counters shardCounters
}

// Executor runs every search variant as a scatter-gather over the shards
// of one store. Results are byte-identical to a monolithic core.Engine
// over the same store (see the package comment for why). An Executor is
// immutable after construction and safe for concurrent use; Close
// releases its worker pool.
type Executor struct {
	global  *core.Engine
	shards  []shardHandle
	pool    *workerPool
	ownPool bool
	partial PartialPolicy
	noBound bool
	part    Partitioner
	metrics *metrics
}

// NewExecutor partitions db into cfg.Shards shards and builds the
// per-shard engines. The shard count is clamped to the store's
// trajectory count. opts configures every engine (global and per-shard)
// identically; corpus-dependent text similarities are rejected with
// ErrShardedTextSim.
func NewExecutor(db core.TrajStore, opts core.Options, cfg Config) (*Executor, error) {
	return newExecutor(db, opts, cfg, nil)
}

// newExecutor is NewExecutor with an optional externally owned worker
// pool (Engine shares one pool across snapshot rebuilds; Close then
// leaves it running).
func newExecutor(db core.TrajStore, opts core.Options, cfg Config, pool *workerPool) (ex *Executor, err error) {
	var cleanup *workerPool
	defer func() {
		// A failed build must not leak the pool it created (store faults
		// surface through recoverBuildFault below, which runs first).
		if err != nil && cleanup != nil {
			cleanup.close()
		}
	}()
	defer recoverBuildFault(&err)
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShards, cfg.Shards)
	}
	// The global engine validates opts and the store once for everyone,
	// and serves the merge-side work (diversity selection) that needs
	// global trajectory IDs.
	global, err := core.NewEngine(db, opts)
	if err != nil {
		return nil, err
	}
	if global.Options().TextSim != core.TextJaccard {
		return nil, fmt.Errorf("%w: got %v", ErrShardedTextSim, global.Options().TextSim)
	}

	n := cfg.Shards
	if t := db.NumTrajectories(); n > t {
		n = t
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner{}
	}
	assignment := part.Partition(db, n)
	if len(assignment) != n {
		return nil, fmt.Errorf("shard: partitioner %q returned %d shards, want %d", part, len(assignment), n)
	}

	ownPool := pool == nil
	if ownPool {
		pool = newWorkerPool(cfg.Workers)
		cleanup = pool
	}
	m := newMetrics(cfg.Metrics)
	ex = &Executor{
		global:  global,
		shards:  make([]shardHandle, n),
		pool:    pool,
		ownPool: ownPool,
		partial: cfg.Partial,
		noBound: cfg.DisableSharedBound,
		part:    part,
		metrics: m,
	}
	for s, ids := range assignment {
		h := &ex.shards[s]
		h.globals = append([]trajdb.TrajID(nil), ids...)
		h.counters = m.forShard(s)
		if len(ids) == 0 {
			continue // empty shard: skipped at query time
		}
		// Shards are plain frozen stores over the partition's
		// trajectories (see buildSubStore).
		sub, err := buildSubStore(db, ids, s)
		if err != nil {
			return nil, err
		}
		// Derive the shard-local options (per-shard TrajBounds rebuild)
		// from the clean sub-store before any fault-injection wrapper: the
		// index build is part of construction, not of the query paths the
		// wrapper is meant to perturb.
		subOpts := subOptions(opts, sub)
		if cfg.WrapStore != nil {
			sub = cfg.WrapStore(s, sub)
		}
		engine, err := core.NewEngine(sub, subOpts)
		if err != nil {
			return nil, fmt.Errorf("shard: engine for shard %d: %w", s, err)
		}
		h.engine = engine
	}
	return ex, nil
}

// recoverBuildFault converts a *trajdb.StoreError panic escaping
// executor construction (the partitioner and shard rebuild read the
// source store) into an error wrapping core.ErrStoreFault, mirroring the
// engine entry points' guard.
func recoverBuildFault(err *error) {
	r := recover()
	if r == nil {
		return
	}
	se, ok := r.(*trajdb.StoreError)
	if !ok {
		panic(r)
	}
	*err = fmt.Errorf("%w: %w", core.ErrStoreFault, se)
}

// NumShards returns the effective shard count (after clamping).
func (ex *Executor) NumShards() int { return len(ex.shards) }

// Partitioner returns the partition strategy in use.
func (ex *Executor) Partitioner() Partitioner { return ex.part }

// Global returns the monolithic engine over the unpartitioned store.
func (ex *Executor) Global() *core.Engine { return ex.global }

// Close stops the executor's workers (waiting for in-flight shard
// searches). Queries submitted after Close fail with ErrClosed.
func (ex *Executor) Close() {
	if ex.ownPool {
		ex.pool.close()
	}
}

// shardOut is one shard's scatter outcome.
type shardOut struct {
	results []core.Result
	stats   core.SearchStats
	err     error
	ran     bool
}

// scatter fans fn out over every non-empty shard on the worker pool and
// waits for all submitted tasks. Under PartialFail the first shard error
// cancels the siblings' context so they abort within one poll interval.
// out[i].ran is false only for empty shards.
func (ex *Executor) scatter(ctx context.Context, fn func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error)) []shardOut {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]shardOut, len(ex.shards))
	done := make(chan struct{}, len(ex.shards))
	submitted := 0
	for i := range ex.shards {
		h := &ex.shards[i]
		if h.engine == nil {
			continue
		}
		o := &out[i]
		ok := ex.pool.submit(sctx, func() {
			res, stats, err := fn(sctx, h)
			o.results, o.stats, o.err, o.ran = res, stats, err, true
			h.counters.record(stats, err)
			if err != nil && ex.partial == PartialFail {
				cancel()
			}
			done <- struct{}{}
		})
		if !ok {
			// The scatter context died (or the pool closed) before a
			// worker freed up; the task never ran.
			err := sctx.Err()
			if err == nil {
				err = ErrClosed
			}
			o.err, o.ran = err, true
			continue
		}
		submitted++
	}
	for j := 0; j < submitted; j++ {
		<-done
	}
	return out
}

// resolve turns a gathered scatter into the indices of shards whose
// results enter the merge, the summed work stats, and the query error.
// Errors resolve in a fixed precedence so concurrent failures stay
// deterministic: the caller's own cancellation first, then the
// lowest-index shard error that is not a secondary cancellation, with
// PartialDegrade store faults dropped (not failed) unless every shard
// faulted.
func (ex *Executor) resolve(ctx context.Context, out []shardOut, trace obs.Tracer) (use []int, stats core.SearchStats, err error) {
	return resolveOuts(ctx, out, ex.partial, ex.metrics, trace)
}

// resolveOuts is resolve's policy core, shared by the in-process
// Executor and the RemoteExecutor (whose shard outcomes arrive over the
// wire but resolve under exactly the same precedence).
func resolveOuts(ctx context.Context, out []shardOut, partial PartialPolicy, m *metrics, trace obs.Tracer) (use []int, stats core.SearchStats, err error) {
	var firstErr, firstNonCancel, firstFault error
	degraded := 0
	for i := range out {
		o := &out[i]
		if !o.ran {
			continue
		}
		stats.Add(o.stats)
		if o.stats.EarlyTerminated {
			stats.EarlyTerminated = true
		}
		if trace != nil {
			note := ""
			if o.err != nil {
				note = "err"
			}
			trace.Emit(obs.SpanEvent{Kind: TraceShardDone, Source: -1, Traj: -1,
				Value: float64(i), Extra: float64(len(o.results)), Note: note})
		}
		if o.err == nil {
			use = append(use, i)
			continue
		}
		if partial == PartialDegrade && errors.Is(o.err, core.ErrStoreFault) {
			if firstFault == nil {
				firstFault = o.err
			}
			degraded++
			if trace != nil {
				trace.Emit(obs.SpanEvent{Kind: TraceDegraded, Source: -1, Traj: -1, Value: float64(i)})
			}
			continue
		}
		if firstErr == nil {
			firstErr = o.err
		}
		if firstNonCancel == nil && !errors.Is(o.err, context.Canceled) {
			firstNonCancel = o.err
		}
	}
	// The caller's own cancellation (deadline or cancel) outranks
	// whatever the shards reported — a monolithic engine would have
	// returned exactly this error.
	if cerr := ctx.Err(); cerr != nil {
		return nil, stats, cerr
	}
	if firstNonCancel != nil {
		return nil, stats, firstNonCancel
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	if degraded > 0 && len(use) == 0 {
		return nil, stats, fmt.Errorf("%w: %w", ErrAllShardsFailed, firstFault)
	}
	m.recordDegraded(degraded)
	return use, stats, nil
}

// mergeTopK folds the usable shards' local top-k lists into the global
// top-k, remapping shard-local trajectory IDs to global ones. The
// tie-break (score descending, then global ID ascending) matches
// core.sortResults, so the merged order is the monolithic order.
func (ex *Executor) mergeTopK(out []shardOut, use []int, k int) ([]core.Result, int) {
	for _, i := range use {
		ex.remap(i, out[i].results)
	}
	return mergeTopKGlobal(out, use, k)
}

// remap rewrites shard i's local trajectory IDs to global ones in place.
func (ex *Executor) remap(i int, results []core.Result) {
	globals := ex.shards[i].globals
	for j := range results {
		results[j].Traj = globals[results[j].Traj]
	}
}

// mergeTopKGlobal folds already-global result lists into the global
// top-k. The remote executor feeds it directly (shard servers remap
// before answering); the in-process mergeTopK remaps first.
func mergeTopKGlobal(out []shardOut, use []int, k int) ([]core.Result, int) {
	if k < 1 {
		k = 1
	}
	top := pqueue.NewTopK[core.Result](k)
	considered := 0
	for _, i := range use {
		for _, r := range out[i].results {
			top.Offer(r.Score, int64(r.Traj), r)
			considered++
		}
	}
	return top.Results(), considered
}

// mergeAll concatenates the usable shards' full result lists (threshold
// searches return every qualifying trajectory) and re-sorts them into
// the monolithic order.
func (ex *Executor) mergeAll(out []shardOut, use []int) ([]core.Result, int) {
	for _, i := range use {
		ex.remap(i, out[i].results)
	}
	return mergeAllGlobal(out, use)
}

// mergeAllGlobal is mergeAll over already-global result lists.
func mergeAllGlobal(out []shardOut, use []int) ([]core.Result, int) {
	var all []core.Result
	for _, i := range use {
		all = append(all, out[i].results...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Traj < all[j].Traj
	})
	return all, len(all)
}

// begin opens a scatter: it records the query metric, emits the scatter
// trace event, and attaches a fresh cross-shard bound when the variant
// supports one (withBound) and the exchange is enabled.
func (ex *Executor) begin(ctx context.Context, variant string, withBound bool) (context.Context, obs.Tracer) {
	ex.metrics.recordQuery(variant)
	trace := obs.TracerFromContext(ctx)
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceScatter, Source: -1, Traj: -1,
			Value: float64(len(ex.shards)), Note: variant})
	}
	if withBound && !ex.noBound {
		// Valid only when every shard runs the same K (see
		// core.SharedBound): a shard's k-th threshold then lower-bounds
		// the global k-th.
		ctx = core.ContextWithSharedBound(ctx, &core.SharedBound{})
	}
	return ctx, trace
}

// finish emits the merge trace event and stamps the scatter's wall time.
func finish(trace obs.Tracer, stats *core.SearchStats, merged, considered int, elapsed func() time.Duration) {
	if trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceMerge, Source: -1, Traj: -1,
			Value: float64(merged), Extra: float64(considered)})
	}
	stats.Elapsed = elapsed()
}

// SearchCtx answers a top-k query by scattering core.Engine.SearchCtx
// over the shards with the cross-shard bound exchange enabled, then
// merging the local top-k lists.
func (ex *Executor) SearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	sctx, trace := ex.begin(ctx, "search", true)
	out := ex.scatter(sctx, func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error) {
		return h.engine.SearchCtx(ctx, q)
	})
	use, stats, err := ex.resolve(ctx, out, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	results, considered := ex.mergeTopK(out, use, q.K)
	finish(trace, &stats, len(results), considered, elapsed)
	return results, stats, nil
}

// SearchThresholdCtx answers a score-threshold query: every shard
// returns all locally qualifying trajectories (the bar θ is global
// already, so no bound exchange is needed) and the merge is a re-sorted
// concatenation.
func (ex *Executor) SearchThresholdCtx(ctx context.Context, q core.Query, theta float64) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	sctx, trace := ex.begin(ctx, "threshold", false)
	out := ex.scatter(sctx, func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error) {
		return h.engine.SearchThresholdCtx(ctx, q, theta)
	})
	use, stats, err := ex.resolve(ctx, out, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	results, considered := ex.mergeAll(out, use)
	finish(trace, &stats, len(results), considered, elapsed)
	return results, stats, nil
}

// SearchWindowedCtx answers a departure-time-windowed top-k query. The
// window filter is shard-local (it depends only on each trajectory), so
// the scatter runs with the bound exchange like SearchCtx.
func (ex *Executor) SearchWindowedCtx(ctx context.Context, q core.Query, window core.TimeWindow) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	sctx, trace := ex.begin(ctx, "windowed", true)
	out := ex.scatter(sctx, func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error) {
		return h.engine.SearchWindowedCtx(ctx, q, window)
	})
	use, stats, err := ex.resolve(ctx, out, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	results, considered := ex.mergeTopK(out, use, q.K)
	finish(trace, &stats, len(results), considered, elapsed)
	return results, stats, nil
}

// OrderAwareSearchCtx answers an order-aware top-k query. The bound
// exchange stays OFF: each shard's order-aware search runs its own
// candidate-widening rounds with shard-local K′ values, so the same-K
// precondition of the shared bound does not hold. The selection lemma
// still does — every globally top-k trajectory is in its own shard's
// local top-k — so merging the per-shard order-aware top-k lists is
// exact.
func (ex *Executor) OrderAwareSearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	sctx, trace := ex.begin(ctx, "orderaware", false)
	out := ex.scatter(sctx, func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error) {
		return h.engine.OrderAwareSearchCtx(ctx, q)
	})
	use, stats, err := ex.resolve(ctx, out, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	results, considered := ex.mergeTopK(out, use, q.K)
	finish(trace, &stats, len(results), considered, elapsed)
	return results, stats, nil
}

// DiversifiedSearchCtx answers a diversity-re-ranked top-k query: the
// shards scatter the enlarged relevance pool (same pool K everywhere, so
// the bound exchange applies), the pools merge into the global pool, and
// the global engine runs the exact monolithic MMR selection over it.
func (ex *Executor) DiversifiedSearchCtx(ctx context.Context, q core.Query, opts core.DiversifyOptions) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	nopts, err := opts.Normalize()
	if err != nil {
		return nil, core.SearchStats{}, err
	}
	poolQ := q
	kk := q.K
	if kk >= 0 {
		if kk == 0 {
			kk = 1 // Query.normalize's default
		}
		poolQ.K = nopts.PoolK(kk)
	}
	// A negative K stays on poolQ so the per-shard engines reject it with
	// the same core.ErrBadK the monolithic engine returns.
	sctx, trace := ex.begin(ctx, "diversified", true)
	out := ex.scatter(sctx, func(ctx context.Context, h *shardHandle) ([]core.Result, core.SearchStats, error) {
		return h.engine.SearchCtx(ctx, poolQ)
	})
	use, stats, err := ex.resolve(ctx, out, trace)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	pool, considered := ex.mergeTopK(out, use, poolQ.K)
	// Selection runs on the global engine: the merged pool carries global
	// trajectory IDs and route overlaps need the full store.
	picked, err := ex.global.SelectDiverseCtx(ctx, pool, kk, nopts)
	if err != nil {
		stats.Elapsed = elapsed()
		return nil, stats, err
	}
	finish(trace, &stats, len(picked), considered, elapsed)
	return picked, stats, nil
}
