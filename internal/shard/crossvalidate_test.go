package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// TestShardedMatchesMonolithic is the subsystem's ground truth: every
// search variant, over every shard count and both partitioners, returns
// results byte-identical to the monolithic engine on the same store.
func TestShardedMatchesMonolithic(t *testing.T) {
	f := testFixture(t)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(41, 0))
	queries := make([]core.Query, 6)
	for i := range queries {
		queries[i] = f.randomQuery(rng, 3, 3, 0.5, 5)
	}
	queries = append(queries,
		f.randomQuery(rng, 1, 0, 1.0, 8),  // pure spatial
		f.randomQuery(rng, 2, 4, 0.0, 5),  // pure textual
		f.randomQuery(rng, 4, 2, 0.7, 25), // k wider than any one shard's share
	)
	window := core.TimeWindow{From: 6 * 3600, To: 18 * 3600}
	const theta = 0.35
	divOpts := core.DiversifyOptions{Mu: 0.4}

	ctx := context.Background()
	for _, part := range []Partitioner{HashPartitioner{}, RegionPartitioner{}} {
		for _, n := range []int{1, 2, 4, 7} {
			ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: n, Partitioner: part})
			if err != nil {
				t.Fatalf("NewExecutor(%v, %d): %v", part, n, err)
			}
			for qi, q := range queries {
				tag := fmt.Sprintf("%v/n=%d/q=%d", part, n, qi)

				wantR, _, wantErr := mono.SearchCtx(ctx, q)
				gotR, _, gotErr := ex.SearchCtx(ctx, q)
				checkSame(t, tag+"/search", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.SearchThresholdCtx(ctx, q, theta)
				gotR, _, gotErr = ex.SearchThresholdCtx(ctx, q, theta)
				checkSame(t, tag+"/threshold", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.SearchWindowedCtx(ctx, q, window)
				gotR, _, gotErr = ex.SearchWindowedCtx(ctx, q, window)
				checkSame(t, tag+"/windowed", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.OrderAwareSearchCtx(ctx, q)
				gotR, _, gotErr = ex.OrderAwareSearchCtx(ctx, q)
				checkSame(t, tag+"/orderaware", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.DiversifiedSearchCtx(ctx, q, divOpts)
				gotR, _, gotErr = ex.DiversifiedSearchCtx(ctx, q, divOpts)
				checkSame(t, tag+"/diversified", gotR, gotErr, wantR, wantErr)
			}
			ex.Close()
		}
	}
}

func checkSame(t *testing.T, label string, got []core.Result, gotErr error, want []core.Result, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error %v, want %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	sameResults(t, label, got, want)
}

// TestShardedDisabledBoundMatches checks the bound-exchange ablation
// changes pruning work only, never answers.
func TestShardedDisabledBoundMatches(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(43, 0))
	q := f.randomQuery(rng, 3, 3, 0.6, 10)

	on, err := NewExecutor(f.db, core.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer on.Close()
	off, err := NewExecutor(f.db, core.Options{}, Config{Shards: 4, DisableSharedBound: true})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer off.Close()

	rOn, _, err := on.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchCtx (bound on): %v", err)
	}
	rOff, _, err := off.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchCtx (bound off): %v", err)
	}
	sameResults(t, "bound ablation", rOn, rOff)
}

// cancelStore cancels a context the first time any shard's expansion
// settles a vertex (TrajsAtVertex runs on every settle), making
// mid-query cancellation deterministic.
type cancelStore struct {
	core.TrajStore
	once   *sync.Once
	cancel context.CancelFunc
}

func (s *cancelStore) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID {
	s.once.Do(s.cancel)
	return s.TrajStore.TrajsAtVertex(v)
}

func TestShardedMidQueryCancellation(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(47, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	ex, err := NewExecutor(f.db, core.Options{}, Config{
		Shards: 4,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			return &cancelStore{TrajStore: s, once: &once, cancel: cancel}
		},
	})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()

	res, _, err := ex.SearchCtx(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx after mid-query cancel: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled query returned %d results, want none", len(res))
	}
}

func TestShardedPreCancelled(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(53, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)

	ex, err := NewExecutor(f.db, core.Options{}, Config{Shards: 3})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ex.SearchCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// armedFaultStore panics with a store fault on every Traj access once
// armed; construction-time accesses (engine build) pass through.
type armedFaultStore struct {
	core.TrajStore
	armed *atomic.Bool
	calls *atomic.Int64
}

func (s *armedFaultStore) Traj(id trajdb.TrajID) *trajdb.Trajectory {
	s.calls.Add(1)
	if s.armed.Load() {
		panic(&trajdb.StoreError{Op: "Traj", ID: id, Err: core.ErrInjected})
	}
	return s.TrajStore.Traj(id)
}

func (s *armedFaultStore) Keywords(id trajdb.TrajID) textual.TermSet {
	s.calls.Add(1)
	if s.armed.Load() {
		panic(&trajdb.StoreError{Op: "Keywords", ID: id, Err: core.ErrInjected})
	}
	return s.TrajStore.Keywords(id)
}

func buildFaulty(t *testing.T, f fixture, partial PartialPolicy, faultShard int) (*Executor, *atomic.Bool) {
	t.Helper()
	armed := &atomic.Bool{}
	calls := &atomic.Int64{}
	ex, err := NewExecutor(f.db, core.Options{}, Config{
		Shards:  4,
		Partial: partial,
		WrapStore: func(shard int, s core.TrajStore) core.TrajStore {
			if shard != faultShard {
				return s
			}
			return &armedFaultStore{TrajStore: s, armed: armed, calls: calls}
		},
	})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	return ex, armed
}

func TestShardedStoreFaultFailsQuery(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(59, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	ex, armed := buildFaulty(t, f, PartialFail, 2)
	defer ex.Close()
	armed.Store(true)

	res, _, err := ex.SearchCtx(context.Background(), q)
	if !errors.Is(err, core.ErrStoreFault) {
		t.Fatalf("SearchCtx with faulted shard: err = %v, want ErrStoreFault", err)
	}
	if res != nil {
		t.Fatalf("faulted query returned %d results, want none", len(res))
	}
}

func TestShardedStoreFaultDegrades(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(59, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	const faultShard = 2

	ex, armed := buildFaulty(t, f, PartialDegrade, faultShard)
	defer ex.Close()
	armed.Store(true)

	got, _, err := ex.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("degraded SearchCtx: %v", err)
	}
	if len(got) == 0 {
		t.Fatalf("degraded query returned no results")
	}

	// The degraded answer must be exactly the top-k over the healthy
	// shards' trajectories: rank the whole corpus monolithically, drop
	// the faulted partition, and keep the first k.
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	allQ := q
	allQ.K = f.db.NumTrajectories()
	ranked, _, err := mono.SearchCtx(context.Background(), allQ)
	if err != nil {
		t.Fatalf("monolithic full ranking: %v", err)
	}
	assignment := ex.Partitioner().Partition(f.db, ex.NumShards())
	faulted := make(map[trajdb.TrajID]bool, len(assignment[faultShard]))
	for _, id := range assignment[faultShard] {
		faulted[id] = true
	}
	var want []core.Result
	for _, r := range ranked {
		if faulted[r.Traj] {
			continue
		}
		want = append(want, r)
		if len(want) == q.K {
			break
		}
	}
	sameResults(t, "degraded top-k", got, want)
}

func TestShardedAllShardsFaulted(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(61, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)

	armed := &atomic.Bool{}
	calls := &atomic.Int64{}
	ex, err := NewExecutor(f.db, core.Options{}, Config{
		Shards:  3,
		Partial: PartialDegrade,
		WrapStore: func(_ int, s core.TrajStore) core.TrajStore {
			return &armedFaultStore{TrajStore: s, armed: armed, calls: calls}
		},
	})
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer ex.Close()
	armed.Store(true)

	_, _, err = ex.SearchCtx(context.Background(), q)
	if !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("all-faulted SearchCtx: err = %v, want ErrAllShardsFailed", err)
	}
	if !errors.Is(err, core.ErrStoreFault) {
		t.Fatalf("all-faulted SearchCtx: err = %v, want it to wrap ErrStoreFault", err)
	}
}
