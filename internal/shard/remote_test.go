package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
	"uots/internal/trajdb"
)

// remoteCluster is a full in-process distributed topology: shards×replicas
// rpc.ShardServers on loopback HTTP, one rpc.Group per partition, and a
// RemoteExecutor routing over them.
type remoteCluster struct {
	re      *RemoteExecutor
	servers [][]*httptest.Server // [partition][replica]
}

// startCluster builds the topology. gcfg (nil = defaults) picks each
// partition's group config; wrap (nil = identity) intercepts each
// replica's handler — the hook the fault-injection tests use to kill or
// stall individual replicas.
func startCluster(t *testing.T, f fixture, shards, replicas int, cfg RemoteConfig,
	gcfg func(p int) rpc.GroupConfig, reg *obs.Registry,
	wrap func(p, r int, h http.Handler) http.Handler,
) *remoteCluster {
	t.Helper()
	m := rpc.NewMetrics(reg)
	groups := make([]*rpc.Group, shards)
	servers := make([][]*httptest.Server, shards)
	for p := 0; p < shards; p++ {
		eng, globals, err := BuildShardEngine(f.db, core.Options{}, nil, shards, p)
		if err != nil {
			t.Fatalf("BuildShardEngine(%d/%d): %v", p, shards, err)
		}
		bases := make([]string, replicas)
		servers[p] = make([]*httptest.Server, replicas)
		for r := 0; r < replicas; r++ {
			ss, err := rpc.NewShardServer(eng, globals, p, shards)
			if err != nil {
				t.Fatalf("NewShardServer(%d/%d): %v", p, shards, err)
			}
			h := http.Handler(ss.Handler())
			if wrap != nil {
				h = wrap(p, r, h)
			}
			hs := httptest.NewServer(h)
			t.Cleanup(hs.Close)
			servers[p][r] = hs
			bases[r] = hs.URL
		}
		gc := rpc.GroupConfig{}
		if gcfg != nil {
			gc = gcfg(p)
		}
		groups[p], err = rpc.NewGroup(bases, gc, m)
		if err != nil {
			t.Fatalf("NewGroup(partition %d): %v", p, err)
		}
	}
	re, err := NewRemoteExecutor(groups, cfg)
	if err != nil {
		t.Fatalf("NewRemoteExecutor: %v", err)
	}
	t.Cleanup(re.Close)
	return &remoteCluster{re: re, servers: servers}
}

// fastGroup is a group config tuned for fault tests: immediate retries,
// no real waiting.
func fastGroup(attempts int) func(int) rpc.GroupConfig {
	return func(int) rpc.GroupConfig {
		return rpc.GroupConfig{
			MaxAttempts: attempts,
			Backoff:     rpc.BackoffConfig{Base: time.Nanosecond},
		}
	}
}

func remoteCounter(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name, "").Value()
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteMatchesMonolithic is the distributed ground truth: every
// search variant plus the batch path, scattered over N partitions × R
// replicas of real shard servers, answers exactly like the monolithic
// engine on the unpartitioned store.
func TestRemoteMatchesMonolithic(t *testing.T) {
	f := testFixture(t)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(67, 0))
	queries := []core.Query{
		f.randomQuery(rng, 3, 3, 0.5, 5),
		f.randomQuery(rng, 2, 2, 0.5, 5),
		f.randomQuery(rng, 1, 0, 1.0, 8),  // pure spatial
		f.randomQuery(rng, 2, 4, 0.0, 5),  // pure textual
		f.randomQuery(rng, 4, 2, 0.7, 25), // k wider than any one shard's share
	}
	window := core.TimeWindow{From: 6 * 3600, To: 18 * 3600}
	const theta = 0.35
	divOpts := core.DiversifyOptions{Mu: 0.4}
	ctx := context.Background()

	for _, n := range []int{2, 4} {
		for _, r := range []int{1, 2} {
			cl := startCluster(t, f, n, r, RemoteConfig{Global: mono}, nil, nil, nil)
			for qi, q := range queries {
				tag := fmt.Sprintf("n=%d/r=%d/q=%d", n, r, qi)

				wantR, _, wantErr := mono.SearchCtx(ctx, q)
				gotR, _, gotErr := cl.re.SearchCtx(ctx, q)
				checkSame(t, tag+"/search", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.SearchThresholdCtx(ctx, q, theta)
				gotR, _, gotErr = cl.re.SearchThresholdCtx(ctx, q, theta)
				checkSame(t, tag+"/threshold", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.SearchWindowedCtx(ctx, q, window)
				gotR, _, gotErr = cl.re.SearchWindowedCtx(ctx, q, window)
				checkSame(t, tag+"/windowed", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.OrderAwareSearchCtx(ctx, q)
				gotR, _, gotErr = cl.re.OrderAwareSearchCtx(ctx, q)
				checkSame(t, tag+"/orderaware", gotR, gotErr, wantR, wantErr)

				wantR, _, wantErr = mono.DiversifiedSearchCtx(ctx, q, divOpts)
				gotR, _, gotErr = cl.re.DiversifiedSearchCtx(ctx, q, divOpts)
				checkSame(t, tag+"/diversified", gotR, gotErr, wantR, wantErr)
			}

			// Batch: same queries plus an invalid slot, per-entry parity.
			bq := append(append([]core.Query(nil), queries[:3]...), core.Query{K: 5})
			opts := core.BatchOptions{SharedExpansion: true}
			want, _, wantErr := mono.SearchBatch(ctx, bq, opts)
			got, _, gotErr := cl.re.SearchBatch(ctx, bq, opts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("n=%d/r=%d/batch: error %v, want %v", n, r, gotErr, wantErr)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d/r=%d/batch: %d entries, want %d", n, r, len(got), len(want))
			}
			for i := range want {
				tag := fmt.Sprintf("n=%d/r=%d/batch/q=%d", n, r, i)
				if (got[i].Err == nil) != (want[i].Err == nil) {
					t.Fatalf("%s: err %v, want %v", tag, got[i].Err, want[i].Err)
				}
				if want[i].Err == nil {
					sameResults(t, tag, got[i].Results, want[i].Results)
				}
			}
			cl.re.Close()
		}
	}
}

// TestRemoteMidQueryCancellation: the client cancels while a replica is
// still computing; the scatter drains and reports the caller's own
// context error, never a partial answer.
func TestRemoteMidQueryCancellation(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(71, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	var started atomic.Int64
	cl := startCluster(t, f, 2, 1, RemoteConfig{}, nil, nil,
		func(p, r int, h http.Handler) http.Handler {
			if p != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if req.URL.Path != rpc.PathSearch {
					h.ServeHTTP(w, req)
					return
				}
				// Drain the body first: the server only watches for client
				// disconnect (cancelling req.Context()) once the request has
				// been fully read.
				io.Copy(io.Discard, req.Body)
				started.Add(1)
				<-req.Context().Done() // park until the client hangs up
			})
		})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type out struct {
		res []core.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, _, err := cl.re.SearchCtx(ctx, q)
		done <- out{res, err}
	}()
	waitUntil(t, "replica to receive the scattered search", func() bool { return started.Load() > 0 })
	cancel()
	o := <-done
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("mid-query cancel: err = %v, want context.Canceled", o.err)
	}
	if o.res != nil {
		t.Fatalf("cancelled query returned %d results, want none", len(o.res))
	}
}

// abortOnSearch kills the connection mid-request for search traffic —
// the HTTP-level equivalent of the replica process dying — while leaving
// health probes intact.
func abortOnSearch(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == rpc.PathSearch || req.URL.Path == rpc.PathBatch {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, req)
	})
}

// TestRemoteReplicaKilledMidQueryFailsOver: with R=2, killing one
// replica mid-query is invisible — the group retries onto its healthy
// sibling and the answers stay exactly monolithic.
func TestRemoteReplicaKilledMidQueryFailsOver(t *testing.T) {
	f := testFixture(t)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(73, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	reg := obs.NewRegistry()
	cl := startCluster(t, f, 2, 2, RemoteConfig{Global: mono}, fastGroup(3), reg,
		func(p, r int, h http.Handler) http.Handler {
			if p == 0 && r == 0 {
				return abortOnSearch(h)
			}
			return h
		})

	ctx := context.Background()
	window := core.TimeWindow{From: 6 * 3600, To: 18 * 3600}
	divOpts := core.DiversifyOptions{Mu: 0.4}

	wantR, _, wantErr := mono.SearchCtx(ctx, q)
	gotR, _, gotErr := cl.re.SearchCtx(ctx, q)
	checkSame(t, "killed-replica/search", gotR, gotErr, wantR, wantErr)

	wantR, _, wantErr = mono.SearchThresholdCtx(ctx, q, 0.35)
	gotR, _, gotErr = cl.re.SearchThresholdCtx(ctx, q, 0.35)
	checkSame(t, "killed-replica/threshold", gotR, gotErr, wantR, wantErr)

	wantR, _, wantErr = mono.SearchWindowedCtx(ctx, q, window)
	gotR, _, gotErr = cl.re.SearchWindowedCtx(ctx, q, window)
	checkSame(t, "killed-replica/windowed", gotR, gotErr, wantR, wantErr)

	wantR, _, wantErr = mono.OrderAwareSearchCtx(ctx, q)
	gotR, _, gotErr = cl.re.OrderAwareSearchCtx(ctx, q)
	checkSame(t, "killed-replica/orderaware", gotR, gotErr, wantR, wantErr)

	wantR, _, wantErr = mono.DiversifiedSearchCtx(ctx, q, divOpts)
	gotR, _, gotErr = cl.re.DiversifiedSearchCtx(ctx, q, divOpts)
	checkSame(t, "killed-replica/diversified", gotR, gotErr, wantR, wantErr)

	if got := remoteCounter(t, reg, "uots_rpc_retries_total"); got == 0 {
		t.Fatalf("failover path recorded no retries")
	}
	if got := remoteCounter(t, reg, "uots_rpc_group_exhausted_total"); got != 0 {
		t.Fatalf("group exhausted %d times despite a healthy sibling", got)
	}
}

// TestRemotePartitionDownDegrades: with R=1, killing a partition's only
// replica exhausts its group; under PartialDegrade the answer is exactly
// the top-k over the surviving partitions — the same oracle the
// in-process degraded test pins.
func TestRemotePartitionDownDegrades(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(79, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)
	const shards, faultShard = 4, 2

	reg := obs.NewRegistry()
	cl := startCluster(t, f, shards, 1, RemoteConfig{Partial: PartialDegrade}, fastGroup(2), reg,
		func(p, r int, h http.Handler) http.Handler {
			if p == faultShard {
				return abortOnSearch(h)
			}
			return h
		})

	got, _, err := cl.re.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("degraded SearchCtx: %v", err)
	}
	if len(got) == 0 {
		t.Fatalf("degraded query returned no results")
	}
	if v := remoteCounter(t, reg, "uots_rpc_group_exhausted_total"); v == 0 {
		t.Fatalf("dead partition never reported group exhaustion")
	}

	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	allQ := q
	allQ.K = f.db.NumTrajectories()
	ranked, _, err := mono.SearchCtx(context.Background(), allQ)
	if err != nil {
		t.Fatalf("monolithic full ranking: %v", err)
	}
	assignment := HashPartitioner{}.Partition(f.db, shards)
	faulted := make(map[trajdb.TrajID]bool, len(assignment[faultShard]))
	for _, id := range assignment[faultShard] {
		faulted[id] = true
	}
	var want []core.Result
	for _, r := range ranked {
		if faulted[r.Traj] {
			continue
		}
		want = append(want, r)
		if len(want) == q.K {
			break
		}
	}
	sameResults(t, "remote degraded top-k", got, want)
}

// TestRemotePartitionDownFails: same dead partition under PartialFail —
// the exhausted group surfaces as the canonical store fault, exactly
// like an injected *trajdb.StoreError in the in-process executor.
func TestRemotePartitionDownFails(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(83, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	cl := startCluster(t, f, 2, 1, RemoteConfig{Partial: PartialFail}, fastGroup(2), nil,
		func(p, r int, h http.Handler) http.Handler {
			if p == 1 {
				return abortOnSearch(h)
			}
			return h
		})

	res, _, err := cl.re.SearchCtx(context.Background(), q)
	if !errors.Is(err, core.ErrStoreFault) {
		t.Fatalf("dead partition under PartialFail: err = %v, want ErrStoreFault", err)
	}
	if !errors.Is(err, rpc.ErrGroupExhausted) {
		t.Fatalf("dead partition error %v does not carry ErrGroupExhausted", err)
	}
	if res != nil {
		t.Fatalf("failed query returned %d results, want none", len(res))
	}
}

// TestRemoteHedgedSlowReplica pins hedging end to end, deterministically:
// partition 0's primary replica parks, the injected hedge timer fires, the
// duplicate lands on the healthy sibling, and the answer is still exactly
// monolithic. No wall-clock in any decision — the test drives the timer.
func TestRemoteHedgedSlowReplica(t *testing.T) {
	f := testFixture(t)
	mono, err := core.NewEngine(f.db, core.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(89, 0))
	q := f.randomQuery(rng, 3, 3, 0.5, 5)

	fire := make(chan time.Time, 1)
	var slowHits atomic.Int64
	reg := obs.NewRegistry()
	cl := startCluster(t, f, 2, 2, RemoteConfig{},
		func(p int) rpc.GroupConfig {
			if p != 0 {
				return rpc.GroupConfig{} // partition 1: no hedging
			}
			return rpc.GroupConfig{
				// The injected timer is the only thing that can arm the
				// hedge; the delay itself is unreachable by wall clock.
				HedgeDelay: time.Hour,
				Timer: func(d time.Duration) (<-chan time.Time, func() bool) {
					return fire, func() bool { return true }
				},
			}
		}, reg,
		func(p, r int, h http.Handler) http.Handler {
			if p != 0 || r != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if req.URL.Path != rpc.PathSearch {
					h.ServeHTTP(w, req)
					return
				}
				io.Copy(io.Discard, req.Body) // see TestRemoteMidQueryCancellation
				slowHits.Add(1)
				<-req.Context().Done() // the slow replica never answers
			})
		})

	type out struct {
		res []core.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, _, err := cl.re.SearchCtx(context.Background(), q)
		done <- out{res, err}
	}()
	waitUntil(t, "slow primary to receive the search", func() bool { return slowHits.Load() > 0 })
	fire <- time.Time{} // arm the hedge
	o := <-done
	if o.err != nil {
		t.Fatalf("hedged SearchCtx: %v", o.err)
	}
	want, _, err := mono.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("monolithic SearchCtx: %v", err)
	}
	sameResults(t, "hedged search", o.res, want)

	if v := remoteCounter(t, reg, "uots_rpc_hedges_total"); v != 1 {
		t.Fatalf("uots_rpc_hedges_total = %d, want 1", v)
	}
	if v := remoteCounter(t, reg, "uots_rpc_hedge_wins_total"); v != 1 {
		t.Fatalf("uots_rpc_hedge_wins_total = %d, want 1", v)
	}
}

// TestRemoteRejections covers the remote-only argument errors.
func TestRemoteRejections(t *testing.T) {
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(97, 0))
	q := f.randomQuery(rng, 2, 2, 0.5, 5)
	cl := startCluster(t, f, 2, 1, RemoteConfig{}, nil, nil, nil)

	if _, _, err := cl.re.DiversifiedSearchCtx(context.Background(), q, core.DiversifyOptions{}); !errors.Is(err, ErrRemoteDiversify) {
		t.Fatalf("diversified without Global: err = %v, want ErrRemoteDiversify", err)
	}
	if _, _, err := cl.re.SearchBatch(context.Background(), []core.Query{q}, core.BatchOptions{Algorithm: core.AlgoExhaustive}); !errors.Is(err, ErrRemoteBatchAlgo) {
		t.Fatalf("remote exhaustive batch: err = %v, want ErrRemoteBatchAlgo", err)
	}
	if _, err := NewRemoteExecutor(nil, RemoteConfig{}); !errors.Is(err, ErrBadShards) {
		t.Fatalf("NewRemoteExecutor with no groups: err = %v, want ErrBadShards", err)
	}
}
