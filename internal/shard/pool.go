package shard

import (
	"context"
	"runtime"
	"sync"
)

// workerPool bounds the number of per-shard searches running at once
// across every in-flight query. Tasks never spawn tasks (scatters are
// one level deep), so a fixed pool cannot deadlock: every submitted task
// is already in a worker's hands — the task channel is unbuffered — and
// runs to completion.
type workerPool struct {
	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{tasks: make(chan func()), quit: make(chan struct{})}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.work()
	}
	return p
}

func (p *workerPool) work() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case task := <-p.tasks:
			task()
		}
	}
}

// submit hands task to a worker, blocking while the pool is saturated.
// It reports false — and the task will never run — when ctx is cancelled
// or the pool closes before a worker frees up.
func (p *workerPool) submit(ctx context.Context, task func()) bool {
	select {
	case p.tasks <- task:
		return true
	case <-ctx.Done():
		return false
	case <-p.quit:
		return false
	}
}

// close stops the workers after their current tasks finish and waits for
// them. Safe to call more than once.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
