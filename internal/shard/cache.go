package shard

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"uots/internal/core"
)

// Cache is a sharded LRU over search results, keyed by (variant,
// snapshot generation, full query). Keys embed the generation, so a
// mutated store never serves stale results: the Engine simply stops
// asking for old-generation keys and their entries age out of the LRU.
//
// Hits return the results only, with zero work stats — a cached answer
// did no store work, and reporting the original query's counters again
// would double-count in metrics. Entries are deep copies: put copies
// the stored list (including each result's Dists) away from the
// caller, and every get hands out a fresh copy, so callers own the
// returned results outright and may mutate them freely.
type Cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recent
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res []core.Result
}

// cacheSubShards is the fixed sub-shard count; small caches collapse to
// one sub-shard so the capacity split cannot round a tiny cache to zero
// usable slots per sub-shard.
const cacheSubShards = 8

// newCache builds a cache holding up to total entries across its
// sub-shards, or returns nil (caching disabled) for total <= 0. The
// capacity is distributed exactly: the first total%n sub-shards get one
// extra slot, so the aggregate capacity equals total (a ceil split
// would hand e.g. total=9 a 16-slot budget).
func newCache(total int) *Cache {
	if total <= 0 {
		return nil
	}
	n := cacheSubShards
	if total < n {
		n = 1
	}
	base, rem := total/n, total%n
	c := &Cache{shards: make([]cacheShard, n)}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = base
		if i < rem {
			s.cap++
		}
		s.lru = list.New()
		s.byKey = make(map[string]*list.Element, s.cap)
	}
	return c
}

func (c *Cache) shardFor(key string) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// copyResults deep-copies a result list: a shallow copy would alias the
// per-result Dists backing arrays, letting one caller's in-place
// mutation corrupt every later hit of the same key.
func copyResults(res []core.Result) []core.Result {
	cp := append([]core.Result(nil), res...)
	for i := range cp {
		cp[i].Dists = append([]float64(nil), cp[i].Dists...)
	}
	return cp
}

// get returns a deep copy of the cached result list for key, if
// present, refreshing its recency.
func (c *Cache) get(key string) ([]core.Result, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return copyResults(el.Value.(*cacheEntry).res), true
}

// put stores a deep copy of results under key, evicting the
// least-recently-used entry when the sub-shard is full. It returns the
// number of evictions (0 or 1) for metrics.
func (c *Cache) put(key string, res []core.Result) int {
	s := c.shardFor(key)
	stored := copyResults(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		el.Value.(*cacheEntry).res = stored
		s.lru.MoveToFront(el)
		return 0
	}
	evicted := 0
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	s.byKey[key] = s.lru.PushFront(&cacheEntry{key: key, res: stored})
	return evicted
}

// len reports the total number of cached entries (for tests).
func (c *Cache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Variant tags for cache keys.
const (
	cacheSearch      = 's'
	cacheThreshold   = 't'
	cacheWindowed    = 'w'
	cacheOrderAware  = 'o'
	cacheDiversified = 'd'
)

// cacheKey serialises a query into a compact binary key. Every scoring
// input is included: the variant tag, the store snapshot generation, the
// locations (order matters — it is the visiting order for order-aware
// queries), the keyword term set (canonically sorted by the TermSet
// invariant), λ, K, and any variant extras (θ, window bounds, diversity
// parameters) passed as raw uint64 images.
func cacheKey(variant byte, gen uint64, q core.Query, extras ...uint64) string {
	buf := make([]byte, 0, 64)
	buf = append(buf, variant)
	buf = binary.AppendUvarint(buf, gen)
	buf = binary.AppendUvarint(buf, uint64(len(q.Locations)))
	for _, v := range q.Locations {
		buf = binary.AppendVarint(buf, int64(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(q.Keywords)))
	for _, t := range q.Keywords {
		buf = binary.AppendVarint(buf, int64(t))
	}
	buf = binary.AppendUvarint(buf, math.Float64bits(q.Lambda))
	buf = binary.AppendVarint(buf, int64(q.K))
	for _, x := range extras {
		buf = binary.AppendUvarint(buf, x)
	}
	return string(buf)
}
