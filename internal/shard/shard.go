// Package shard scales the UOTS engine out across partitions of one
// trajectory store: every search variant runs as a scatter-gather over N
// per-shard engines on a bounded worker pool, and the per-shard
// candidates merge into a deterministic global top-k that reproduces the
// monolithic engine's answer — the same trajectories in the same order
// with the same scores. (Reported distances may differ from the
// monolithic run by an ULP: the core engine resolves each distance
// either by forward expansion scan or by a reverse probe, which sum the
// same shortest path in different association orders, and sharding moves
// the scan/probe boundary.)
//
// The design exploits the same structure the paper's pruning does. A
// shard's local k-th score can only under-estimate the global k-th (its
// candidate set is a subset of the union), so the maximum local
// threshold across shards — exchanged through an atomic
// core.SharedBound — is always a valid global pruning bar: a lagging
// shard stops expanding the moment its local upper bound falls below
// the leaders' k-th lower bound, the cross-partition bound-exchange
// idea the authors later scaled up in TS-Join. Because all pruning is
// strict (< the bar), trajectories tying the k-th score always survive,
// and the merged top-k (stable tie-break: score descending, then global
// trajectory ID ascending — the monolithic order) is exact regardless
// of exchange timing.
//
// Failure semantics are configurable per Config.Partial: a shard hitting
// a store fault (an error wrapping core.ErrStoreFault) either fails the
// whole query after cancelling its siblings (PartialFail, the default)
// or is dropped from the merge while the healthy shards' results are
// served (PartialDegrade). Context cancellation always fails the query:
// the per-shard engines poll the scatter context and abort within one
// poll interval.
//
// Engine layers a snapshot-generation-keyed result cache (sharded LRU)
// in front of the executor; see Engine and NewDynamicEngine for the
// invalidation contract.
package shard

import (
	"errors"

	"uots/internal/core"
	"uots/internal/obs"
)

// Errors returned by executor construction and queries.
var (
	// ErrBadShards rejects non-positive shard counts.
	ErrBadShards = errors.New("shard: shard count must be positive")
	// ErrShardedTextSim rejects text similarities that depend on
	// corpus-global statistics: TextCosineIDF weights terms by document
	// frequency over the whole store, so a shard-local index would score
	// differently than the monolithic engine. Only corpus-independent
	// similarities (TextJaccard) shard safely.
	ErrShardedTextSim = errors.New("shard: sharded execution requires a corpus-independent text similarity (TextJaccard)")
	// ErrClosed is returned for queries submitted after Close.
	ErrClosed = errors.New("shard: executor is closed")
	// ErrAllShardsFailed is wrapped around the first shard error when
	// PartialDegrade finds no healthy shard to serve from.
	ErrAllShardsFailed = errors.New("shard: every shard failed")
)

// PartialPolicy selects what a query does when one shard fails with a
// store fault while others are healthy.
type PartialPolicy int

const (
	// PartialFail fails the query on the first shard store fault,
	// cancelling the remaining shards' searches. The default.
	PartialFail PartialPolicy = iota
	// PartialDegrade drops faulted shards from the merge and serves the
	// healthy shards' results (recorded in metrics and the query trace).
	// Cancellation and validation errors still fail the query — only
	// store faults degrade.
	PartialDegrade
)

// String implements fmt.Stringer.
func (p PartialPolicy) String() string {
	switch p {
	case PartialFail:
		return "fail"
	case PartialDegrade:
		return "degrade"
	default:
		return "PartialPolicy(?)"
	}
}

// Config tunes the sharded executor. The zero value is not runnable:
// Shards must be positive.
type Config struct {
	// Shards is the number of partitions N. Clamped to the store's
	// trajectory count; shards left empty by the partitioner are skipped
	// at query time.
	Shards int
	// Workers bounds concurrent per-shard searches across all in-flight
	// queries (default runtime.GOMAXPROCS(0)).
	Workers int
	// Partitioner assigns trajectories to shards (default
	// HashPartitioner{}).
	Partitioner Partitioner
	// Partial is the partial-results policy (default PartialFail).
	Partial PartialPolicy
	// DisableSharedBound turns off the cross-shard k-th-bound exchange
	// (ablation; results are identical either way, only pruning differs).
	DisableSharedBound bool
	// CacheSize caps the result cache at this many entries across all
	// cache shards (0 disables caching; only Engine consults it).
	CacheSize int
	// Metrics receives the executor's uots_shard_* instruments
	// (nil disables metrics).
	Metrics *obs.Registry
	// WrapStore, when non-nil, wraps each shard's store after
	// partitioning — the fault-injection seam used by tests
	// (e.g. core.NewFaultStore on shard 2 only).
	WrapStore func(shard int, s core.TrajStore) core.TrajStore
}
