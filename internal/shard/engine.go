package shard

import (
	"context"
	"math"
	"sync"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/trajdb"
)

// Engine is the serving-layer front of the sharded executor: it adds a
// snapshot-generation-keyed result cache and, for dynamic stores,
// transparent re-sharding when the store mutates.
//
// Cache contract: keys embed the store generation (always 0 for static
// stores), so a DynamicStore mutation — which bumps the generation —
// invalidates every cached answer at once without any explicit flush;
// stale entries age out of the LRU. A hit serves the cached result list
// without touching any trajectory store and reports zero work stats
// (only Elapsed is set).
//
// Engine is safe for concurrent use. Close releases the worker pool;
// queries after Close fail with ErrClosed.
type Engine struct {
	cfg  Config
	opts core.Options

	source *trajdb.DynamicStore // nil for static stores
	cache  *Cache
	m      *metrics
	pool   *workerPool

	mu     sync.RWMutex
	ex     *Executor
	exGen  uint64
	closed bool
}

// NewEngine builds a sharded engine over an immutable store. The store
// must not be mutated afterwards; use NewDynamicEngine for stores that
// change.
func NewEngine(db core.TrajStore, opts core.Options, cfg Config) (*Engine, error) {
	pool := newWorkerPool(cfg.Workers)
	ex, err := newExecutor(db, opts, cfg, pool)
	if err != nil {
		pool.close()
		return nil, err
	}
	return &Engine{
		cfg:   cfg,
		opts:  opts,
		cache: newCache(cfg.CacheSize),
		m:     newMetrics(cfg.Metrics),
		pool:  pool,
		ex:    ex,
	}, nil
}

// NewDynamicEngine builds a sharded engine over a mutable store. The
// first query after any mutation re-shards the then-current snapshot
// (the rebuild is O(live trajectories), same as the snapshot itself);
// queries in between share the cached executor. The store must be
// non-empty at query time.
func NewDynamicEngine(ds *trajdb.DynamicStore, opts core.Options, cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		return nil, ErrBadShards
	}
	return &Engine{
		cfg:    cfg,
		opts:   opts,
		source: ds,
		cache:  newCache(cfg.CacheSize),
		m:      newMetrics(cfg.Metrics),
		pool:   newWorkerPool(cfg.Workers),
	}, nil
}

// Close stops the engine's workers after in-flight shard searches
// finish. It is idempotent — repeated and concurrent Close calls are
// safe (the pool shutdown is once-guarded and every call waits for the
// drain) — and safe against in-flight queries: a query racing Close
// either completes normally or fails with ErrClosed; it never observes
// a half-closed engine. RemoteExecutor.Close follows the same contract.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.pool.close()
}

// executor returns the current executor and its generation, rebuilding
// from the dynamic source when the store has mutated since the last
// build.
func (e *Engine) executor() (*Executor, uint64, error) {
	e.mu.RLock()
	ex, gen, closed := e.ex, e.exGen, e.closed
	e.mu.RUnlock()
	if closed {
		return nil, 0, ErrClosed
	}
	if e.source == nil {
		return ex, 0, nil
	}
	if ex != nil && e.source.Generation() == gen {
		return ex, gen, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, 0, ErrClosed
	}
	// Double-checked: another query may have rebuilt while we waited.
	if e.ex != nil && e.source.Generation() == e.exGen {
		return e.ex, e.exGen, nil
	}
	snap, _, snapGen := e.source.SnapshotGen()
	ex, err := newExecutor(snap, e.opts, e.cfg, e.pool)
	if err != nil {
		return nil, 0, err
	}
	e.ex, e.exGen = ex, snapGen
	return ex, snapGen, nil
}

// cached looks key up in the result cache, recording hit/miss metrics
// and the cache_hit trace event.
func (e *Engine) cached(ctx context.Context, key string) ([]core.Result, bool) {
	if e.cache == nil {
		return nil, false
	}
	res, ok := e.cache.get(key)
	if !ok {
		if e.m != nil {
			e.m.cacheMisses.Inc()
		}
		return nil, false
	}
	if e.m != nil {
		e.m.cacheHits.Inc()
	}
	if trace := obs.TracerFromContext(ctx); trace != nil {
		trace.Emit(obs.SpanEvent{Kind: TraceCacheHit, Source: -1, Traj: -1, Value: float64(len(res))})
	}
	return res, true
}

// store saves a successful answer under key.
func (e *Engine) store(key string, res []core.Result) {
	if e.cache == nil {
		return
	}
	if ev := e.cache.put(key, res); ev > 0 && e.m != nil {
		e.m.cacheEvictions.Add(uint64(ev))
	}
}

// run is the shared query path: cache lookup, executor dispatch, cache
// fill. key is empty when the variant (or query) is uncacheable.
func (e *Engine) run(ctx context.Context, keyOf func(gen uint64) string,
	do func(ex *Executor) ([]core.Result, core.SearchStats, error),
) ([]core.Result, core.SearchStats, error) {
	elapsed := obs.Stopwatch()
	ex, gen, err := e.executor()
	if err != nil {
		return nil, core.SearchStats{}, err
	}
	key := ""
	if e.cache != nil && keyOf != nil {
		key = keyOf(gen)
		if res, ok := e.cached(ctx, key); ok {
			stats := core.SearchStats{Elapsed: elapsed()}
			return res, stats, nil
		}
	}
	res, stats, err := do(ex)
	if err != nil {
		return nil, stats, err
	}
	e.store(key, res)
	return res, stats, nil
}

// SearchCtx mirrors core.Engine.SearchCtx over the shards.
func (e *Engine) SearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	return e.run(ctx,
		func(gen uint64) string { return cacheKey(cacheSearch, gen, q) },
		func(ex *Executor) ([]core.Result, core.SearchStats, error) { return ex.SearchCtx(ctx, q) })
}

// SearchThresholdCtx mirrors core.Engine.SearchThresholdCtx.
func (e *Engine) SearchThresholdCtx(ctx context.Context, q core.Query, theta float64) ([]core.Result, core.SearchStats, error) {
	return e.run(ctx,
		func(gen uint64) string { return cacheKey(cacheThreshold, gen, q, math.Float64bits(theta)) },
		func(ex *Executor) ([]core.Result, core.SearchStats, error) {
			return ex.SearchThresholdCtx(ctx, q, theta)
		})
}

// SearchWindowedCtx mirrors core.Engine.SearchWindowedCtx.
func (e *Engine) SearchWindowedCtx(ctx context.Context, q core.Query, window core.TimeWindow) ([]core.Result, core.SearchStats, error) {
	return e.run(ctx,
		func(gen uint64) string {
			return cacheKey(cacheWindowed, gen, q, math.Float64bits(window.From), math.Float64bits(window.To))
		},
		func(ex *Executor) ([]core.Result, core.SearchStats, error) {
			return ex.SearchWindowedCtx(ctx, q, window)
		})
}

// OrderAwareSearchCtx mirrors core.Engine.OrderAwareSearchCtx.
func (e *Engine) OrderAwareSearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error) {
	return e.run(ctx,
		func(gen uint64) string { return cacheKey(cacheOrderAware, gen, q) },
		func(ex *Executor) ([]core.Result, core.SearchStats, error) { return ex.OrderAwareSearchCtx(ctx, q) })
}

// DiversifiedSearchCtx mirrors core.Engine.DiversifiedSearchCtx.
func (e *Engine) DiversifiedSearchCtx(ctx context.Context, q core.Query, opts core.DiversifyOptions) ([]core.Result, core.SearchStats, error) {
	return e.run(ctx,
		func(gen uint64) string {
			return cacheKey(cacheDiversified, gen, q, math.Float64bits(opts.Mu), uint64(opts.PoolFactor))
		},
		func(ex *Executor) ([]core.Result, core.SearchStats, error) {
			return ex.DiversifiedSearchCtx(ctx, q, opts)
		})
}

// SearchBatch mirrors core.Engine.SearchBatch over the shards (see
// Executor.SearchBatch). AlgoExpansion entries consult the result cache
// under the same keys as SearchCtx — a batch answer for a query is
// byte-identical to its single-query answer, so the two paths share
// entries. Hits are served without scattering (zero work stats, like
// single-query hits); the misses scatter as one sub-batch, so
// shared-expansion batches share frontiers among the uncached queries.
func (e *Engine) SearchBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats, error) {
	elapsed := obs.Stopwatch()
	ex, gen, err := e.executor()
	if err != nil {
		return nil, core.BatchStats{}, err
	}
	out := make([]core.BatchResult, len(queries))
	bstats := core.BatchStats{Queries: len(queries)}
	cacheable := e.cache != nil && opts.Algorithm == core.AlgoExpansion
	idx := make([]int, 0, len(queries))
	live := make([]core.Query, 0, len(queries))
	for i, q := range queries {
		if cacheable {
			if res, ok := e.cached(ctx, cacheKey(cacheSearch, gen, q)); ok {
				out[i] = core.BatchResult{Index: i, Results: res}
				continue
			}
		}
		idx = append(idx, i)
		live = append(live, q)
	}
	if len(live) > 0 {
		sub, sstats, serr := ex.SearchBatch(ctx, live, opts)
		if sub == nil && serr != nil {
			return nil, core.BatchStats{Queries: len(queries), WallClock: elapsed()}, serr
		}
		for j, r := range sub {
			r.Index = idx[j]
			out[idx[j]] = r
			if cacheable && r.Err == nil {
				e.store(cacheKey(cacheSearch, gen, live[j]), r.Results)
			}
		}
		bstats.Failed = sstats.Failed
		bstats.PerQuery = sstats.PerQuery
		bstats.DistinctSources = sstats.DistinctSources
		bstats.SourceRefs = sstats.SourceRefs
		bstats.FrontierSettles = sstats.FrontierSettles
		bstats.ServedSettles = sstats.ServedSettles
	}
	bstats.WallClock = elapsed()
	return out, bstats, ctx.Err()
}

// NumShards reports the current executor's shard count (0 before the
// first dynamic build).
func (e *Engine) NumShards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ex == nil {
		return 0
	}
	return e.ex.NumShards()
}

// CacheLen reports the number of cached result lists (for tests and
// debug endpoints).
func (e *Engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}
