package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"uots/internal/geo"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// sidecarMagic identifies the persistent index sidecar format, version 1.
// The sidecar lives next to a diskstore record file (<record path>.idx)
// and carries the memory-resident structures the store would otherwise
// rebuild with a full sequential record scan at every Open: the
// per-vertex trajectory posting lists, the per-document keyword term
// sets (from which the document-frequency-bearing inverted index is
// re-derived by a cheap in-memory inversion), the per-trajectory
// bounding boxes, and the departure times.
//
// On-disk layout (all integers little-endian):
//
//	magic            8 bytes  "UOTSIDX1"
//	numTrajs         u32
//	numVertices      u32
//	vocabSize        u32      ─┐ fingerprint of the record file the
//	recordBytes      u64      ─┘ sidecar was derived from
//	starts           numTrajs × f64
//	bboxes           numTrajs × 4 f64 (minX minY maxX maxY)
//	vertex postings  numVertices × (u32 len, len × u32 TrajID)
//	doc terms        numTrajs × (u32 len, len × u32 TermID)
//
// A sidecar whose header does not match the opened record file (count,
// vertex count, vocabulary size, or total record bytes) is ignored and
// the store falls back to the scan rebuild — a stale sidecar can cost
// time, never correctness.
const sidecarMagic = "UOTSIDX1"

// Sidecar is the decoded persistent-index payload exchanged with the
// disk store.
type Sidecar struct {
	NumVertices int
	VocabSize   int
	RecordBytes uint64 // total bytes of the record section

	Starts   []float64
	BBoxes   []geo.Rect
	VertexIx [][]trajdb.TrajID
	DocTerms []textual.TermSet
}

// NumTrajs returns the trajectory count the sidecar covers.
func (sc *Sidecar) NumTrajs() int { return len(sc.Starts) }

// SidecarPath derives the sidecar file path from a record file path.
func SidecarPath(recordPath string) string { return recordPath + ".idx" }

// WriteSidecar atomically writes sc to path (tmp file + rename), so a
// crash mid-write leaves either the old sidecar or none — never a torn
// one that Open would have to distrust.
func WriteSidecar(path string, sc *Sidecar) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := encodeSidecar(f, sc); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("index: writing sidecar %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func encodeSidecar(f *os.File, sc *Sidecar) error {
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(sidecarMagic); err != nil {
		return err
	}
	n := sc.NumTrajs()
	for _, v := range []uint32{uint32(n), uint32(sc.NumVertices), uint32(sc.VocabSize)} {
		if err := putU32(w, v); err != nil {
			return err
		}
	}
	if err := putU64(w, sc.RecordBytes); err != nil {
		return err
	}
	for _, t := range sc.Starts {
		if err := putU64(w, math.Float64bits(t)); err != nil {
			return err
		}
	}
	for _, b := range sc.BBoxes {
		for _, c := range [4]float64{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y} {
			if err := putU64(w, math.Float64bits(c)); err != nil {
				return err
			}
		}
	}
	for _, list := range sc.VertexIx {
		if err := putU32(w, uint32(len(list))); err != nil {
			return err
		}
		for _, id := range list {
			if err := putU32(w, uint32(id)); err != nil {
				return err
			}
		}
	}
	for _, terms := range sc.DocTerms {
		if err := putU32(w, uint32(len(terms))); err != nil {
			return err
		}
		for _, t := range terms {
			if err := putU32(w, uint32(t)); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// ReadSidecar decodes the sidecar at path and validates its internal
// shape (every posting in range, every list length plausible). Matching
// the sidecar against a specific record file is the caller's job — the
// header fields exist for exactly that comparison.
func ReadSidecar(path string) (*Sidecar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := decodeSidecar(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("index: reading sidecar %s: %w", path, err)
	}
	return sc, nil
}

func decodeSidecar(r io.Reader) (*Sidecar, error) {
	magic := make([]byte, len(sidecarMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != sidecarMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var hdr [3]uint32
	for i := range hdr {
		v, err := getU32(r)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	recordBytes, err := getU64(r)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 30
	n, numVertices, vocabSize := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if hdr[0] > maxReasonable || hdr[1] > maxReasonable || hdr[2] > maxReasonable {
		return nil, fmt.Errorf("implausible header (%d trajs, %d vertices, %d terms)", n, numVertices, vocabSize)
	}
	sc := &Sidecar{
		NumVertices: numVertices,
		VocabSize:   vocabSize,
		RecordBytes: recordBytes,
		Starts:      make([]float64, n),
		BBoxes:      make([]geo.Rect, n),
		VertexIx:    make([][]trajdb.TrajID, numVertices),
		DocTerms:    make([]textual.TermSet, n),
	}
	for i := range sc.Starts {
		bits, err := getU64(r)
		if err != nil {
			return nil, err
		}
		sc.Starts[i] = math.Float64frombits(bits)
	}
	for i := range sc.BBoxes {
		var c [4]float64
		for j := range c {
			bits, err := getU64(r)
			if err != nil {
				return nil, err
			}
			c[j] = math.Float64frombits(bits)
		}
		sc.BBoxes[i] = geo.Rect{Min: geo.Point{X: c[0], Y: c[1]}, Max: geo.Point{X: c[2], Y: c[3]}}
	}
	for v := range sc.VertexIx {
		ln, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if int(ln) > n {
			return nil, fmt.Errorf("vertex %d posting list longer than corpus (%d > %d)", v, ln, n)
		}
		if ln == 0 {
			continue
		}
		list := make([]trajdb.TrajID, ln)
		for i := range list {
			id, err := getU32(r)
			if err != nil {
				return nil, err
			}
			if int(id) >= n {
				return nil, fmt.Errorf("vertex %d posting %d outside corpus", v, id)
			}
			list[i] = trajdb.TrajID(id)
		}
		sc.VertexIx[v] = list
	}
	for d := range sc.DocTerms {
		ln, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if int(ln) > vocabSize {
			return nil, fmt.Errorf("doc %d has more terms than the vocabulary (%d > %d)", d, ln, vocabSize)
		}
		if ln == 0 {
			continue
		}
		terms := make(textual.TermSet, ln)
		for i := range terms {
			t, err := getU32(r)
			if err != nil {
				return nil, err
			}
			if int(t) >= vocabSize {
				return nil, fmt.Errorf("doc %d term %d outside vocabulary", d, t)
			}
			terms[i] = textual.TermID(t)
		}
		sc.DocTerms[d] = terms
	}
	// Reject trailing garbage: a longer file than the format describes
	// means the writer and reader disagree about the layout.
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes after sidecar payload")
	}
	return sc, nil
}

// Matches reports whether the sidecar fingerprint agrees with a record
// file holding numTrajs records over numVertices vertices, vocabSize
// terms, and recordBytes bytes of record payload.
func (sc *Sidecar) Matches(numTrajs, numVertices, vocabSize int, recordBytes uint64) bool {
	return sc.NumTrajs() == numTrajs &&
		sc.NumVertices == numVertices &&
		sc.VocabSize == vocabSize &&
		sc.RecordBytes == recordBytes
}

// RebuildTextIndex inverts the per-document term sets into a frozen
// keyword inverted index — the in-memory half of the persistent text
// index. Document frequencies (Index.DocFreq, IDF) fall out of the
// posting lists, so nothing beyond the term sets needs to persist.
func (sc *Sidecar) RebuildTextIndex() *textual.Index {
	ix := textual.NewIndex()
	for d, terms := range sc.DocTerms {
		ix.Add(textual.DocID(d), terms)
	}
	ix.Freeze()
	return ix
}

// SortedVertexCheck verifies ascending order of every posting list —
// the invariant the expansion scan loop and union merges rely on.
func (sc *Sidecar) SortedVertexCheck() error {
	for v, list := range sc.VertexIx {
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				return fmt.Errorf("index: vertex %d posting list not strictly ascending at %d", v, i)
			}
		}
	}
	return nil
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
