// Package index holds the precomputed pruning structures layered on top
// of the trajectory store: ALT-landmark network-distance lower bounds
// aggregated per trajectory (TrajBounds) and the persistent sidecar
// format that lets the disk store's memory-resident indexes skip their
// build scan on warm starts (sidecar.go).
//
// TrajBounds turns the engine's per-candidate spatial upper bound from
// an O(K·|τ|) scan over the trajectory's vertex set — a record fault on
// the disk store — into an O(K) lookup over precomputed per-landmark
// intervals, at the cost of a slightly looser bound. The engine uses it
// to discard whole trajectories at admission time, before any Dijkstra
// settle or store access.
package index

import (
	"math"

	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// Source is the minimal store surface TrajBounds construction needs.
// Both trajdb.Store and diskstore.Store satisfy it.
type Source interface {
	NumTrajectories() int
	UniqueVertices(id trajdb.TrajID) []roadnet.VertexID
}

// TrajBounds provides O(K) lower bounds on the network distance from an
// arbitrary vertex to the nearest vertex of a trajectory, derived from K
// ALT landmarks: for each landmark l and trajectory τ it stores
// [minB, maxB] = the range of finite d(l, x) over x ∈ τ. For a query
// vertex u with a = d(l, u) finite, every x ∈ τ with finite d(l, x)
// satisfies d(u, x) ≥ |a − d(l, x)| ≥ max(0, minB − a, a − maxB), and
// vertices with infinite d(l, x) lie in another component than u
// entirely (the graph is undirected), so the interval bound holds for
// min over all of τ. The max over landmarks is the published bound.
//
// Compared with roadnet.Landmarks.LowerBoundToSet (min over τ of the
// per-pair ALT bound) the interval form is never tighter, but it needs
// no access to the trajectory's vertex set at query time — the property
// the admission-time prune in the expansion loop depends on.
//
// A TrajBounds is immutable after construction and safe for concurrent
// use. Extend derives a grown value without touching the receiver,
// matching the MVCC snapshot-extension discipline of trajdb.
type TrajBounds struct {
	lm *roadnet.Landmarks
	// rows[t] holds 2K floats: [min_0..min_{K-1}, max_0..max_{K-1}].
	// A landmark with no finite distance to any vertex of t keeps the
	// +Inf/−Inf sentinels and is skipped at query time. Rows are never
	// mutated after construction; Extend copies only the outer headers.
	rows [][]float64
}

// NewTrajBounds precomputes per-trajectory landmark intervals for every
// trajectory in src. Building over a disk-resident store faults every
// record once (one sequential pass); the result is pure memory.
func NewTrajBounds(src Source, lm *roadnet.Landmarks) *TrajBounds {
	n := src.NumTrajectories()
	b := &TrajBounds{lm: lm, rows: make([][]float64, n)}
	for t := 0; t < n; t++ {
		b.rows[t] = buildRow(src, lm, trajdb.TrajID(t))
	}
	return b
}

// buildRow computes one trajectory's [min, max] interval per landmark.
func buildRow(src Source, lm *roadnet.Landmarks, id trajdb.TrajID) []float64 {
	k := lm.Count()
	row := make([]float64, 2*k)
	for i := 0; i < k; i++ {
		row[i] = math.Inf(1)
		row[k+i] = math.Inf(-1)
	}
	for _, v := range src.UniqueVertices(id) {
		for i := 0; i < k; i++ {
			d := lm.Dist(i, v)
			if d == roadnet.Unreachable {
				continue
			}
			if d < row[i] {
				row[i] = d
			}
			if d > row[k+i] {
				row[k+i] = d
			}
		}
	}
	return row
}

// Landmarks returns the landmark set the bounds were derived from.
func (b *TrajBounds) Landmarks() *roadnet.Landmarks { return b.lm }

// NumTrajectories returns the number of trajectories covered.
func (b *TrajBounds) NumTrajectories() int { return len(b.rows) }

// LowerBound returns a lower bound on min over x ∈ trajectory id of the
// network distance d(u, x). With no landmarks (or no finite landmark
// information) it returns 0, the trivial bound.
func (b *TrajBounds) LowerBound(u roadnet.VertexID, id trajdb.TrajID) float64 {
	row := b.rows[id]
	k := b.lm.Count()
	var lb float64
	for i := 0; i < k; i++ {
		a := b.lm.Dist(i, u)
		if a == roadnet.Unreachable {
			// u is in another component than this landmark: no finite
			// information (mirrors roadnet.Landmarks.LowerBound).
			continue
		}
		minB, maxB := row[i], row[k+i]
		if minB > maxB {
			continue // landmark reaches no vertex of the trajectory
		}
		if d := minB - a; d > lb {
			lb = d
		}
		if d := a - maxB; d > lb {
			lb = d
		}
	}
	return lb
}

// Extend returns a TrajBounds covering src's trajectories, reusing the
// receiver's rows for the shared dense-ID prefix and computing rows only
// for the appended tail — the incremental maintenance step of an
// add-only MVCC snapshot extension. The receiver is not touched: the
// outer row slice is copied (header copies), never appended to in
// place, so readers pinned to the old value keep a consistent view.
// src must extend the corpus the receiver was built over (dense IDs,
// add-only); src.NumTrajectories() < b.NumTrajectories() panics.
func (b *TrajBounds) Extend(src Source) *TrajBounds {
	n := src.NumTrajectories()
	if n < len(b.rows) {
		panic("index: Extend over a shrunken store (removals need a rebuild)")
	}
	next := &TrajBounds{lm: b.lm, rows: make([][]float64, n)}
	copy(next.rows, b.rows)
	for t := len(b.rows); t < n; t++ {
		next.rows[t] = buildRow(src, b.lm, trajdb.TrajID(t))
	}
	return next
}
