package index

import (
	"math"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// testWorld builds a small city and trajectory corpus for the bound
// properties.
func testWorld(t *testing.T, trajs int) (*roadnet.Graph, *trajdb.Store) {
	t.Helper()
	g := testGraph(t)
	vocab := textual.GenerateVocab(4, 20, 1.0, 3)
	store, err := trajdb.Generate(g, trajdb.GenOptions{
		Count: trajs, MeanSamples: 12, Vocab: vocab, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, store
}

// TestLowerBoundNeverExceedsTrueDistance is the soundness property the
// whole pruning subsystem rests on: for every query vertex u and
// trajectory τ, LowerBound(u, τ) ≤ min over x ∈ τ of the true network
// distance d(u, x). Checked against a Dijkstra oracle across landmark
// counts K ∈ {4, 8, 16}.
func TestLowerBoundNeverExceedsTrueDistance(t *testing.T) {
	g, store := testWorld(t, 40)
	sssp := roadnet.NewSSSP(g)
	for _, k := range []int{4, 8, 16} {
		lm := roadnet.NewLandmarks(g, k, 0)
		b := NewTrajBounds(store, lm)
		if b.NumTrajectories() != store.NumTrajectories() {
			t.Fatalf("K=%d: coverage %d, want %d", k, b.NumTrajectories(), store.NumTrajectories())
		}
		for u := 0; u < g.NumVertices(); u += 7 {
			sssp.Run(roadnet.VertexID(u))
			for id := 0; id < store.NumTrajectories(); id++ {
				oracle := math.Inf(1)
				for _, v := range store.UniqueVertices(trajdb.TrajID(id)) {
					if d := sssp.Dist(v); d != roadnet.Unreachable && d < oracle {
						oracle = d
					}
				}
				lb := b.LowerBound(roadnet.VertexID(u), trajdb.TrajID(id))
				if lb < 0 {
					t.Fatalf("K=%d: LowerBound(%d, %d) = %g < 0", k, u, id, lb)
				}
				if lb > oracle+1e-9 {
					t.Fatalf("K=%d: LowerBound(%d, %d) = %g exceeds true distance %g",
						k, u, id, lb, oracle)
				}
			}
		}
	}
}

// TestLowerBoundNeverTighterThanPerVertexALT: the interval bound is by
// construction never tighter than the O(K·|τ|) per-vertex ALT bound it
// replaces — if it ever were, the two prune paths could disagree.
func TestLowerBoundNeverTighterThanPerVertexALT(t *testing.T) {
	g, store := testWorld(t, 30)
	lm := roadnet.NewLandmarks(g, 8, 0)
	b := NewTrajBounds(store, lm)
	for u := 0; u < g.NumVertices(); u += 5 {
		for id := 0; id < store.NumTrajectories(); id++ {
			exact := lm.LowerBoundToSet(roadnet.VertexID(u), store.UniqueVertices(trajdb.TrajID(id)))
			interval := b.LowerBound(roadnet.VertexID(u), trajdb.TrajID(id))
			if interval > exact+1e-9 {
				t.Fatalf("interval bound %g tighter than per-vertex ALT bound %g for (u=%d, τ=%d)",
					interval, exact, u, id)
			}
		}
	}
}

// sliceSource is a hand-built Source for the Extend tests.
type sliceSource [][]roadnet.VertexID

func (s sliceSource) NumTrajectories() int { return len(s) }
func (s sliceSource) UniqueVertices(id trajdb.TrajID) []roadnet.VertexID {
	return s[id]
}

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 10, Cols: 10, Style: roadnet.StyleDense, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExtendLeavesReceiverUntouched: Extend is the MVCC maintenance
// step — the old value must keep answering exactly as before, and the
// extension must agree with a from-scratch build.
func TestExtendLeavesReceiverUntouched(t *testing.T) {
	g := testGraph(t)
	lm := roadnet.NewLandmarks(g, 4, 0)

	verts := make(sliceSource, 6)
	for i := range verts {
		verts[i] = []roadnet.VertexID{
			roadnet.VertexID(i % g.NumVertices()),
			roadnet.VertexID((i*13 + 5) % g.NumVertices()),
		}
	}
	base := NewTrajBounds(verts[:3], lm)
	before := make([]float64, 3)
	for id := range before {
		before[id] = base.LowerBound(2, trajdb.TrajID(id))
	}

	ext := base.Extend(verts)
	if base.NumTrajectories() != 3 {
		t.Fatalf("receiver grew to %d trajectories", base.NumTrajectories())
	}
	if ext.NumTrajectories() != 6 {
		t.Fatalf("extension covers %d trajectories, want 6", ext.NumTrajectories())
	}
	for id, want := range before {
		if got := base.LowerBound(2, trajdb.TrajID(id)); got != want {
			t.Errorf("receiver bound for trajectory %d changed: %g → %g", id, want, got)
		}
	}
	fresh := NewTrajBounds(verts, lm)
	for u := 0; u < g.NumVertices(); u += 9 {
		for id := 0; id < 6; id++ {
			a := ext.LowerBound(roadnet.VertexID(u), trajdb.TrajID(id))
			b := fresh.LowerBound(roadnet.VertexID(u), trajdb.TrajID(id))
			if a != b {
				t.Fatalf("extended and fresh bounds disagree for (u=%d, τ=%d): %g vs %g", u, id, a, b)
			}
		}
	}
}

func TestExtendShrunkenStorePanics(t *testing.T) {
	g := testGraph(t)
	lm := roadnet.NewLandmarks(g, 2, 0)
	verts := sliceSource{{0, 1}, {2, 3}}
	b := NewTrajBounds(verts, lm)
	defer func() {
		if recover() == nil {
			t.Fatal("Extend over a shrunken store should panic")
		}
	}()
	b.Extend(verts[:1])
}
