package index

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uots/internal/geo"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

func testSidecar() *Sidecar {
	return &Sidecar{
		NumVertices: 4,
		VocabSize:   10,
		RecordBytes: 1234,
		Starts:      []float64{0.5, 42, 86399.9},
		BBoxes: []geo.Rect{
			{Min: geo.Point{X: -1, Y: -2}, Max: geo.Point{X: 3, Y: 4}},
			{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 0, Y: 0}},
			{Min: geo.Point{X: 1.5, Y: 2.5}, Max: geo.Point{X: 1.5, Y: 9}},
		},
		VertexIx: [][]trajdb.TrajID{{0, 2}, nil, {1}, {0, 1, 2}},
		DocTerms: []textual.TermSet{{1, 3, 7}, nil, {9}},
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.bin.idx")
	want := testSidecar()
	if err := WriteSidecar(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSidecar(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if !got.Matches(3, 4, 10, 1234) {
		t.Error("decoded sidecar does not match its own fingerprint")
	}
	for _, mismatch := range [][4]int{{2, 4, 10, 1234}, {3, 5, 10, 1234}, {3, 4, 11, 1234}, {3, 4, 10, 999}} {
		if got.Matches(mismatch[0], mismatch[1], mismatch[2], uint64(mismatch[3])) {
			t.Errorf("Matches%v = true, want false", mismatch)
		}
	}
	if err := got.SortedVertexCheck(); err != nil {
		t.Errorf("SortedVertexCheck: %v", err)
	}
	ix := got.RebuildTextIndex()
	if ix.NumDocs() != 3 || ix.DocFreq(3) != 1 || ix.DocFreq(2) != 0 {
		t.Errorf("rebuilt text index wrong: docs=%d df(3)=%d df(2)=%d",
			ix.NumDocs(), ix.DocFreq(3), ix.DocFreq(2))
	}
}

// TestSidecarRejectsDamage: every corruption shape is detected at decode
// time, so a damaged sidecar degrades to the rebuild scan instead of
// serving wrong indexes.
func TestSidecarRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "good.idx")
	if err := WriteSidecar(path, testSidecar()); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xff; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xaa) }},
		{"posting out of range", func(b []byte) []byte {
			// First posting list entry lives right after header+starts+bboxes
			// + one u32 length; overwrite it with an ID past the corpus.
			off := len(sidecarMagic) + 3*4 + 8 + 3*8 + 3*4*8 + 4
			b = append([]byte(nil), b...)
			b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0, 0
			return b
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		p := filepath.Join(dir, tc.name+".idx")
		if err := os.WriteFile(p, tc.mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSidecar(p); err == nil {
			t.Errorf("%s: damaged sidecar decoded without error", tc.name)
		}
	}
	if _, err := ReadSidecar(filepath.Join(dir, "missing.idx")); err == nil {
		t.Error("missing sidecar decoded without error")
	}
}

func TestSortedVertexCheckCatchesDisorder(t *testing.T) {
	sc := testSidecar()
	sc.VertexIx[3] = []trajdb.TrajID{2, 1}
	if sc.SortedVertexCheck() == nil {
		t.Error("descending posting list passed SortedVertexCheck")
	}
	sc.VertexIx[3] = []trajdb.TrajID{1, 1}
	if sc.SortedVertexCheck() == nil {
		t.Error("duplicate posting passed SortedVertexCheck")
	}
}

// TestWriteSidecarAtomic: a write failure leaves no temp litter and the
// destination untouched.
func TestWriteSidecarOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.idx")
	if err := WriteSidecar(path, testSidecar()); err != nil {
		t.Fatal(err)
	}
	sc2 := testSidecar()
	sc2.RecordBytes = 777
	if err := WriteSidecar(path, sc2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSidecar(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RecordBytes != 777 {
		t.Errorf("overwrite not visible: RecordBytes = %d", got.RecordBytes)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}
