package uots

import (
	"io"

	"uots/internal/core"
	"uots/internal/diskstore"
	"uots/internal/geo"
	"uots/internal/mapmatch"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// Spatial substrate.
type (
	// Point is a planar coordinate in kilometres.
	Point = geo.Point
	// Rect is an axis-aligned bounding box.
	Rect = geo.Rect
	// VertexID identifies a road-network vertex.
	VertexID = roadnet.VertexID
	// Graph is an immutable road network.
	Graph = roadnet.Graph
	// GraphBuilder assembles a Graph incrementally.
	GraphBuilder = roadnet.Builder
	// CityOptions parameterizes synthetic city generation.
	CityOptions = roadnet.CityOptions
	// GridStyle selects the structural family of a generated city.
	GridStyle = roadnet.GridStyle
	// VertexIndex snaps coordinates to network vertices.
	VertexIndex = roadnet.VertexIndex
	// Landmarks provides ALT network-distance lower bounds.
	Landmarks = roadnet.Landmarks
	// Bidirectional is a reusable point-to-point shortest-path workspace.
	Bidirectional = roadnet.Bidirectional
)

// NewBidirectional returns a point-to-point shortest-path workspace on g.
func NewBidirectional(g *Graph) *Bidirectional { return roadnet.NewBidirectional(g) }

// Trajectory substrate.
type (
	// TrajID identifies a trajectory in a Store.
	TrajID = trajdb.TrajID
	// Sample is one timestamped trajectory point.
	Sample = trajdb.Sample
	// Trajectory is a sample sequence with textual attributes.
	Trajectory = trajdb.Trajectory
	// Store is an immutable trajectory database.
	Store = trajdb.Store
	// StoreBuilder accumulates trajectories into a Store.
	StoreBuilder = trajdb.Builder
	// DynamicStore is a mutable trajectory collection queried through
	// immutable dense snapshots.
	DynamicStore = trajdb.DynamicStore
	// ExternalID is a DynamicStore's stable trajectory handle.
	ExternalID = trajdb.ExternalID
	// TrajGenOptions parameterizes synthetic trip generation.
	TrajGenOptions = trajdb.GenOptions
)

// Textual substrate.
type (
	// TermID identifies a vocabulary term.
	TermID = textual.TermID
	// TermSet is a sorted, deduplicated keyword set.
	TermSet = textual.TermSet
	// Vocab maps keyword strings to TermIDs.
	Vocab = textual.Vocab
	// SyntheticVocab is a generated, topic-structured keyword universe.
	SyntheticVocab = textual.SyntheticVocab
)

// Engine types.
type (
	// TrajStore is the storage interface the engine runs on; *Store and
	// *DiskStore both implement it.
	TrajStore = core.TrajStore
	// DiskStore is the disk-resident trajectory store (memory-resident
	// indexes, LRU-buffered trajectory payloads).
	DiskStore = diskstore.Store
	// DiskCacheStats counts a DiskStore's buffer activity.
	DiskCacheStats = diskstore.CacheStats
	// Query is a UOTS query: intended places, intention keywords, λ, k.
	Query = core.Query
	// Result is one recommended trajectory with score decomposition.
	Result = core.Result
	// Engine answers UOTS queries over one Store.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// SearchStats reports per-query work counters.
	SearchStats = core.SearchStats
	// Scheduling selects the query-source scheduling strategy.
	Scheduling = core.Scheduling
	// TextSim selects the textual similarity function.
	TextSim = core.TextSim
	// TimeWindow is the optional departure-time filter extension.
	TimeWindow = core.TimeWindow
	// TextFirstOptions tunes the TextFirst baseline.
	TextFirstOptions = core.TextFirstOptions
	// DiversifyOptions tunes route-diversity re-ranking.
	DiversifyOptions = core.DiversifyOptions
	// BatchOptions configures parallel batch runs.
	BatchOptions = core.BatchOptions
	// BatchResult is one query's outcome in a batch.
	BatchResult = core.BatchResult
	// BatchStats aggregates a batch run.
	BatchStats = core.BatchStats
	// Algorithm names a query-processing strategy for batch runs.
	Algorithm = core.Algorithm
	// FaultStore wraps a TrajStore with deterministic fault and latency
	// injection for robustness testing.
	FaultStore = core.FaultStore
	// FaultConfig tunes a FaultStore.
	FaultConfig = core.FaultConfig
	// StoreError is the typed panic payload a TrajStore uses to signal an
	// unrecoverable mid-query failure.
	StoreError = trajdb.StoreError
)

// ErrStoreFault wraps every storage failure an engine entry point
// surfaces; test with errors.Is.
var ErrStoreFault = core.ErrStoreFault

// Map-matching substrate.
type (
	// Matcher snaps GPS traces onto a road network.
	Matcher = mapmatch.Matcher
	// MatchOptions tunes the matcher.
	MatchOptions = mapmatch.Options
)

// City generation styles.
const (
	// StyleSparse is the maze-like sparse family (BRN shape).
	StyleSparse = roadnet.StyleSparse
	// StyleDense is the dense urban-grid family (NRN shape).
	StyleDense = roadnet.StyleDense
)

// Engine constants.
const (
	ScheduleHeuristic  = core.ScheduleHeuristic
	ScheduleRoundRobin = core.ScheduleRoundRobin
	ScheduleMinRadius  = core.ScheduleMinRadius
	TextJaccard        = core.TextJaccard
	TextCosineIDF      = core.TextCosineIDF
	AlgoExpansion      = core.AlgoExpansion
	AlgoExhaustive     = core.AlgoExhaustive
	AlgoTextFirst      = core.AlgoTextFirst
	// MaxQueryLocations bounds len(Query.Locations).
	MaxQueryLocations = core.MaxQueryLocations
	// SecondsPerDay is the temporal domain length for Sample timestamps.
	SecondsPerDay = trajdb.SecondsPerDay
)

// NewEngine creates a search engine over any TrajStore — the in-memory
// *Store or a *DiskStore. A zero Options selects the paper configuration
// (heuristic scheduling, Jaccard text similarity, γ = 1 km).
func NewEngine(db TrajStore, opts Options) (*Engine, error) { return core.NewEngine(db, opts) }

// NewFaultStore wraps db with a deterministic fault/latency injection
// policy for robustness testing.
func NewFaultStore(db TrajStore, cfg FaultConfig) *FaultStore { return core.NewFaultStore(db, cfg) }

// CreateDiskStore converts an in-memory store into a disk-store file.
func CreateDiskStore(path string, src *Store) error { return diskstore.Create(path, src) }

// OpenDiskStore opens a disk-store file over g with the given LRU buffer
// budget in bytes (≤0 selects the 64 MiB default).
func OpenDiskStore(path string, g *Graph, cacheBytes int) (*DiskStore, error) {
	return diskstore.Open(path, g, cacheBytes)
}

// NewStoreBuilder returns a trajectory builder over g; vocab may be nil
// when keywords are pre-interned.
func NewStoreBuilder(g *Graph, vocab *Vocab) *StoreBuilder { return trajdb.NewBuilder(g, vocab) }

// NewDynamicStore returns a mutable trajectory collection over g.
func NewDynamicStore(g *Graph, vocab *Vocab) *DynamicStore { return trajdb.NewDynamic(g, vocab) }

// ReconstructRoute expands a trajectory's samples into the full vertex
// path they imply (shortest paths between consecutive samples) and its
// length in km. bidir may be nil.
func ReconstructRoute(g *Graph, t *Trajectory, bidir *Bidirectional) ([]VertexID, float64, error) {
	return trajdb.ReconstructRoute(g, t, bidir)
}

// NewVocab returns an empty keyword vocabulary.
func NewVocab() *Vocab { return textual.NewVocab() }

// Tokenize splits free text into normalized keywords.
func Tokenize(text string) []string { return textual.Tokenize(text) }

// GenerateVocab creates a topic-structured synthetic keyword universe.
func GenerateVocab(topics, termsPerTopic int, zipf float64, seed uint64) *SyntheticVocab {
	return textual.GenerateVocab(topics, termsPerTopic, zipf, seed)
}

// GenerateCity builds a synthetic road network.
func GenerateCity(opts CityOptions) (*Graph, error) { return roadnet.GenerateCity(opts) }

// BRNLike generates a sparse Beijing-Road-Network-shaped city (scale=1 ≈
// 28k vertices).
func BRNLike(scale float64, seed uint64) *Graph { return roadnet.BRNLike(scale, seed) }

// NRNLike generates a dense New-York-Road-Network-shaped city (scale=1 ≈
// 96k vertices).
func NRNLike(scale float64, seed uint64) *Graph { return roadnet.NRNLike(scale, seed) }

// GenerateTrajectories synthesizes a trajectory corpus on g.
func GenerateTrajectories(g *Graph, opts TrajGenOptions) (*Store, error) {
	return trajdb.Generate(g, opts)
}

// Densify rebuilds a store with each trajectory's implied shortest-path
// route made explicit as interpolated samples, so searches measure
// distances to routes rather than to recorded sample points.
func Densify(s *Store) (*Store, error) { return trajdb.Densify(s) }

// NewVertexIndex builds a nearest-vertex grid index over g (cellSize ≤ 0
// picks a sensible default).
func NewVertexIndex(g *Graph, cellSize float64) *VertexIndex {
	return roadnet.NewVertexIndex(g, cellSize)
}

// NewLandmarks selects count ALT landmarks on g by farthest-point
// sampling.
func NewLandmarks(g *Graph, count int, seed VertexID) *Landmarks {
	return roadnet.NewLandmarks(g, count, seed)
}

// NewMatcher returns an HMM map matcher over g (idx may be nil).
func NewMatcher(g *Graph, idx *VertexIndex, opts MatchOptions) *Matcher {
	return mapmatch.NewMatcher(g, idx, opts)
}

// CollapseRepeats removes consecutive duplicates from a matched vertex
// sequence.
func CollapseRepeats(vs []VertexID) []VertexID { return mapmatch.CollapseRepeats(vs) }

// ShortestPath returns a shortest path between two vertices and its
// length (bidirectional Dijkstra).
func ShortestPath(g *Graph, u, v VertexID) (path []VertexID, dist float64, ok bool) {
	return roadnet.ShortestPath(g, u, v)
}

// WriteGraph serializes g in the binary graph format.
func WriteGraph(w io.Writer, g *Graph) error { return roadnet.WriteGraph(w, g) }

// ReadGraph deserializes a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return roadnet.ReadGraph(r) }

// WriteStore serializes a trajectory store (without its graph).
func WriteStore(w io.Writer, s *Store) error { return trajdb.WriteStore(w, s) }

// ReadStore deserializes a trajectory store over g.
func ReadStore(r io.Reader, g *Graph) (*Store, error) { return trajdb.ReadStore(r, g) }

// ExportCSV writes a store in the long-format CSV interchange format
// (traj_id, seq, vertex, time_seconds, keywords).
func ExportCSV(w io.Writer, s *Store) error { return trajdb.ExportCSV(w, s) }

// ImportCSV reads the CSV interchange format into a new store over g.
func ImportCSV(r io.Reader, g *Graph) (*Store, error) { return trajdb.ImportCSV(r, g) }

// ExportGeoJSON writes trajectories (all when ids is empty) as a GeoJSON
// FeatureCollection of LineStrings for map inspection.
func ExportGeoJSON(w io.Writer, s *Store, ids ...TrajID) error {
	return trajdb.ExportGeoJSON(w, s, ids...)
}
