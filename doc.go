// Package uots is a Go implementation of user-oriented trajectory search
// for trip recommendation (UOTS, after Shang et al., EDBT 2012): given a
// database of map-matched, keyword-annotated trajectories in a road
// network, a query consisting of intended places and travel-intention
// keywords returns the trajectories that best match both the spatial and
// the textual intent, combined by a preference parameter λ.
//
// The package is a facade over the implementation packages:
//
//   - a road-network substrate (graphs, Dijkstra/A*/bidirectional search,
//     incremental network expansion, landmarks, nearest-vertex indexing,
//     synthetic city generation),
//   - a trajectory store with vertex and keyword inverted indexes and a
//     synthetic trip generator,
//   - a textual substrate (vocabulary, keyword similarity, inverted index),
//   - an HMM map matcher for raw GPS input,
//   - the UOTS engine: the expansion search with upper-bound pruning,
//     heuristic query-source scheduling, adaptive probes and early
//     termination, plus Exhaustive and TextFirst baselines and a parallel
//     batch engine.
//
// # Quickstart
//
//	g := uots.BRNLike(0.2, 42)                   // or build with uots.GraphBuilder
//	vocab := uots.GenerateVocab(8, 60, 1, 7)     // or uots.NewVocab + Intern
//	db, _ := uots.GenerateTrajectories(g, uots.TrajGenOptions{
//		Count: 10000, Vocab: vocab, Seed: 7,
//	})
//	engine, _ := uots.NewEngine(db, uots.Options{})
//	res, _, _ := engine.Search(uots.Query{
//		Locations: []uots.VertexID{120, 3456},
//		Keywords:  vocab.Vocab.InternAll([]string{"t0_kw1", "t0_kw2"}),
//		Lambda:    0.5,
//		K:         5,
//	})
//
// See the examples directory for runnable end-to-end programs and
// DESIGN.md / EXPERIMENTS.md for the reproduction notes.
package uots
