package uots_test

import (
	"fmt"
	"log"

	"uots"
)

// buildExampleWorld assembles a small deterministic world by hand: a 3×3
// grid city and three tagged trips.
func buildExampleWorld() (*uots.Graph, *uots.Store, *uots.Vocab) {
	var gb uots.GraphBuilder
	// Vertices 0..8 on a 3×3 unit grid.
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			gb.AddVertex(uots.Point{X: float64(x), Y: float64(y)})
		}
	}
	id := func(x, y int) uots.VertexID { return uots.VertexID(y*3 + x) }
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x+1 < 3 {
				if err := gb.AddEdge(id(x, y), id(x+1, y), 1); err != nil {
					log.Fatal(err)
				}
			}
			if y+1 < 3 {
				if err := gb.AddEdge(id(x, y), id(x, y+1), 1); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}

	vocab := uots.NewVocab()
	sb := uots.NewStoreBuilder(g, vocab)
	addTrip := func(verts []uots.VertexID, depart float64, tags ...string) {
		samples := make([]uots.Sample, len(verts))
		for i, v := range verts {
			samples[i] = uots.Sample{V: v, T: depart + float64(i)*60}
		}
		if _, err := sb.AddWithKeywords(samples, tags); err != nil {
			log.Fatal(err)
		}
	}
	addTrip([]uots.VertexID{0, 1, 2, 5}, 9*3600, "market", "food")
	addTrip([]uots.VertexID{6, 7, 8}, 10*3600, "gallery", "river")
	addTrip([]uots.VertexID{0, 3, 6, 7}, 11*3600, "market", "gallery")
	return g, sb.Freeze(), vocab
}

// ExampleEngine_Search shows the core call: intended places plus
// intention keywords, linearly combined by λ.
func ExampleEngine_Search() {
	_, db, vocab := buildExampleWorld()
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := engine.Search(uots.Query{
		Locations: []uots.VertexID{0, 6}, // bottom-left and top-left corners
		Keywords:  vocab.InternAll([]string{"market", "gallery"}),
		Lambda:    0.5,
		K:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. trajectory %d score %.3f (spatial %.3f, textual %.3f)\n",
			i+1, r.Traj, r.Score, r.Spatial, r.Textual)
	}
	// Output:
	// 1. trajectory 2 score 1.000 (spatial 1.000, textual 1.000)
	// 2. trajectory 0 score 0.451 (spatial 0.568, textual 0.333)
}

// ExampleEngine_SearchWindowed shows the departure-time filter extension.
func ExampleEngine_SearchWindowed() {
	_, db, vocab := buildExampleWorld()
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := engine.SearchWindowed(uots.Query{
		Locations: []uots.VertexID{0},
		Keywords:  vocab.InternAll([]string{"market"}),
		Lambda:    0.5,
		K:         1,
	}, uots.TimeWindow{From: 8 * 3600, To: 10 * 3600}) // departures 08:00–10:00
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory %d departs at %02.0f:00\n",
		results[0].Traj, db.Traj(results[0].Traj).Start()/3600)
	// Output:
	// trajectory 0 departs at 09:00
}
