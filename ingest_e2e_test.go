package uots_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer for capturing a live
// subprocess's output: exec.Cmd copies the pipe from its own goroutine,
// so reading a plain buffer while the process still runs is a data race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLiveIngestCrashRecovery drives the write path the way an operator
// would experience a crash: boot uotsserve in live-ingest mode over a
// generated dataset, ingest batches with -fsync always, capture the
// corpus over the read API, SIGKILL the process with a batch possibly
// in flight, restart on the same WAL directory, and require every
// acknowledged trajectory back byte-identically. Then a short uotsload
// run against the recovered server must report nonzero throughput into
// BENCH_LOAD.json.
func TestLiveIngestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("live-ingest end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, name := range []string{"uotsdgen", "uotsserve", "uotsload"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}

	data := filepath.Join(dir, "world")
	out, err := exec.Command(bin("uotsdgen"),
		"-city", "brn", "-scale", "0.1", "-trajs", "200", "-mean", "10", "-out", data).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsdgen: %v\n%s", err, out)
	}

	const addr = "127.0.0.1:18933"
	base := "http://" + addr
	walDir := filepath.Join(dir, "wal")
	serveArgs := []string{"-data", data, "-addr", addr, "-drain", "5s",
		"-ingest", "-wal-dir", walDir, "-fsync", "always"}

	srv := exec.Command(bin("uotsserve"), serveArgs...)
	var bootLog syncBuffer
	srv.Stderr = &bootLog
	if err := srv.Start(); err != nil {
		t.Fatalf("uotsserve start: %v", err)
	}
	killed := false
	defer func() {
		if !killed {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	waitHealthy(t, base)

	// Ingest acknowledged batches; with -fsync always each 200 means
	// the batch is on disk before the response was written.
	var ackedIDs []int64
	for b := 0; b < 5; b++ {
		ids := postIngest(t, base, ingestBatchBody(b, 3))
		ackedIDs = append(ackedIDs, ids...)
	}
	if len(ackedIDs) != 15 {
		t.Fatalf("acknowledged %d trajectories, want 15", len(ackedIDs))
	}

	// The corpus as the read API serves it, keyed by trajectory ID.
	before := make(map[int64][]byte, len(ackedIDs))
	for _, id := range ackedIDs {
		before[id] = getBody(t, base, fmt.Sprintf("/trajectory/%d", id))
	}

	// One batch launched and deliberately not awaited: the SIGKILL may
	// land before, during, or after its commit. Recovery must tolerate
	// every one of those outcomes (including a torn WAL tail).
	go http.Post(base+"/trajectories", "application/json",
		bytes.NewReader(ingestBatchBody(99, 2)))
	time.Sleep(5 * time.Millisecond)

	if err := srv.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync
		t.Fatalf("kill: %v", err)
	}
	srv.Wait()
	killed = true

	// Restart on the same WAL directory.
	srv2 := exec.Command(bin("uotsserve"), serveArgs...)
	var recoverLog syncBuffer
	srv2.Stderr = &recoverLog
	if err := srv2.Start(); err != nil {
		t.Fatalf("uotsserve restart: %v", err)
	}
	exited := false
	defer func() {
		if !exited {
			srv2.Process.Kill()
			srv2.Wait()
		}
	}()
	waitHealthy(t, base)
	if !strings.Contains(recoverLog.String(), "live ingest") {
		t.Fatalf("restart log has no ingest line:\n%s", recoverLog.String())
	}

	// Replay accounting: at least the five acknowledged batches, at
	// least the fifteen acknowledged trajectories.
	var stats struct {
		Live            int    `json:"live"`
		ReplayedRecords uint64 `json:"replayed_records"`
		ReplayedTrajs   uint64 `json:"replayed_trajs"`
	}
	if err := json.Unmarshal(getBody(t, base, "/ingest/stats"), &stats); err != nil {
		t.Fatalf("ingest stats: %v", err)
	}
	if stats.ReplayedRecords < 5 || stats.ReplayedTrajs < 15 {
		t.Fatalf("replay = %d records / %d trajs, want >= 5 / >= 15", stats.ReplayedRecords, stats.ReplayedTrajs)
	}
	if stats.Live < 200+15 {
		t.Fatalf("live = %d, want >= 215 (dataset + acknowledged)", stats.Live)
	}

	// Every acknowledged trajectory is back, byte-identically.
	for _, id := range ackedIDs {
		after := getBody(t, base, fmt.Sprintf("/trajectory/%d", id))
		if !bytes.Equal(before[id], after) {
			t.Fatalf("trajectory %d changed across crash recovery:\nbefore: %s\nafter:  %s",
				id, before[id], after)
		}
	}

	// Closed-loop smoke: a short seeded load run against the recovered
	// server must complete requests and write its snapshot.
	loadOut := filepath.Join(dir, "BENCH_LOAD.json")
	out, err = exec.Command(bin("uotsload"),
		"-target", base, "-qps", "100", "-duration", "1s", "-seed", "3",
		"-out", loadOut).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsload: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(loadOut)
	if err != nil {
		t.Fatalf("BENCH_LOAD.json not written: %v", err)
	}
	var load struct {
		Summary struct {
			Completed   uint64  `json:"completed"`
			AchievedQPS float64 `json:"achieved_qps"`
			ErrorRate   float64 `json:"error_rate"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(raw, &load); err != nil {
		t.Fatalf("BENCH_LOAD.json parse: %v\n%s", err, raw)
	}
	if load.Summary.Completed == 0 || load.Summary.AchievedQPS <= 0 {
		t.Fatalf("load summary reports no throughput: %+v\n%s", load.Summary, out)
	}
	if load.Summary.ErrorRate > 0.05 {
		t.Fatalf("load error rate %.2f%% against an idle server\n%s", 100*load.Summary.ErrorRate, out)
	}

	// Graceful exit drains the queue and syncs the WAL.
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("server exit after SIGTERM: %v\n%s", err, recoverLog.String())
	}
	exited = true
	if !strings.Contains(recoverLog.String(), "ingest drained") {
		t.Fatalf("shutdown log has no drain line:\n%s", recoverLog.String())
	}
}

// ingestBatchBody renders n valid trajectories whose vertices and
// keywords identify the batch.
func ingestBatchBody(batch, n int) []byte {
	type sample struct {
		Vertex int     `json:"vertex"`
		T      float64 `json:"t"`
	}
	type traj struct {
		Samples  []sample `json:"samples"`
		Keywords string   `json:"keywords"`
	}
	var trajs []traj
	for i := 0; i < n; i++ {
		tr := traj{Keywords: fmt.Sprintf("batch%d traj%d museum", batch, i)}
		for j := 0; j < 4; j++ {
			tr.Samples = append(tr.Samples, sample{
				Vertex: (batch*7 + i*3 + j) % 50,
				T:      float64(1000 + batch*100 + i*20 + j*5),
			})
		}
		trajs = append(trajs, tr)
	}
	raw, _ := json.Marshal(map[string]any{"trajectories": trajs})
	return raw
}

// postIngest submits one batch and returns the acknowledged IDs.
func postIngest(t *testing.T, base string, body []byte) []int64 {
	t.Helper()
	resp, err := http.Post(base+"/trajectories", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest request: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	var ack struct {
		IDs []int64 `json:"ids"`
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatalf("ingest ack parse: %v\n%s", err, raw)
	}
	return ack.IDs
}

// getBody fetches path and returns the raw response bytes.
func getBody(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d: %s", path, resp.StatusCode, raw)
	}
	return raw
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		var resp *http.Response
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("server never came up: %v", err)
}
